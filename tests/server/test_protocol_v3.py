"""Unit tests of the v3 binary hot-frame codecs (no sockets involved)."""

import numpy as np
import pytest

from repro.server import protocol
from repro.server.protocol import (
    BASELINE_VERSION,
    EVENT_WIRE_DTYPE,
    PROTOCOL_VERSION,
    WIRE_DTYPE_CODES,
    FrameType,
    ProtocolError,
    decode_header,
    decode_payload,
    encode_frame,
    encode_hot_events,
    encode_hot_ingest,
    hot_dtype_code,
)
from repro.service.events import PeriodStartEvent


def join(buffers) -> bytes:
    return b"".join(bytes(b) for b in buffers)


def roundtrip(buffers):
    blob = join(buffers)
    head = protocol._HEADER.size
    kind, payload_len = decode_header(blob[:head])
    payload = blob[head:]
    assert len(payload) == payload_len
    return decode_payload(kind, payload)


class TestDtypeCodes:
    def test_every_wire_code_survives_a_roundtrip(self):
        for spec in WIRE_DTYPE_CODES:
            dtype = np.dtype(spec)
            code = hot_dtype_code(dtype)
            assert code is not None
            assert protocol._CODE_TO_DTYPE[code] == dtype

    def test_unsupported_dtypes_fall_back_to_json(self):
        assert hot_dtype_code(np.dtype("U8")) is None
        assert hot_dtype_code(EVENT_WIRE_DTYPE) is None  # structured
        assert hot_dtype_code("not a dtype at all" * 5) is None

    def test_native_aliases_map_to_little_endian_codes(self):
        # float64 on any host maps to the "<f8" wire code.
        assert hot_dtype_code(np.float64) == WIRE_DTYPE_CODES["<f8"]
        assert hot_dtype_code(np.dtype(bool)) == WIRE_DTYPE_CODES["|b1"]


class TestHotIngestRoundTrip:
    @pytest.mark.parametrize("spec", ["<f8", "<f4", "<i8", "<i4", "<u2", "|u1"])
    def test_matrix_and_handles_survive(self, spec):
        matrix = (np.arange(24).reshape(3, 8) % 120).astype(spec)
        frame = roundtrip(encode_hot_ingest(FrameType.INGEST_HOT, [4, 0, 7], matrix))
        assert frame.type == FrameType.INGEST_HOT
        assert frame.meta == {"handles": [4, 0, 7]}
        np.testing.assert_array_equal(frame.arrays[0], matrix)
        assert frame.arrays[0].dtype == np.dtype(spec)

    def test_single_stream_row(self):
        matrix = np.linspace(0.0, 1.0, 16).reshape(1, -1)
        frame = roundtrip(encode_hot_ingest(FrameType.LOCKSTEP_HOT, [0], matrix))
        assert frame.type == FrameType.LOCKSTEP_HOT
        assert frame.meta["handles"] == [0]
        np.testing.assert_array_equal(frame.arrays[0][0], matrix[0])

    def test_decoded_matrix_is_a_zero_copy_view(self):
        matrix = np.arange(512, dtype=np.float64).reshape(4, 128)
        frame = roundtrip(encode_hot_ingest(FrameType.INGEST_HOT, [0, 1, 2, 3], matrix))
        assert frame.arrays[0].base is not None

    def test_one_dimensional_matrix_rejected(self):
        with pytest.raises(ProtocolError, match="2-D"):
            encode_hot_ingest(FrameType.INGEST_HOT, [0], np.arange(8.0))

    def test_handle_count_must_match_rows(self):
        with pytest.raises(ProtocolError, match="one handle per"):
            encode_hot_ingest(
                FrameType.INGEST_HOT, [0, 1, 2], np.zeros((2, 4))
            )

    def test_uncodeable_dtype_rejected(self):
        table = np.zeros(2, dtype=EVENT_WIRE_DTYPE)
        with pytest.raises(ProtocolError, match="no hot wire code"):
            encode_hot_ingest(FrameType.INGEST_HOT, [0, 1], table.reshape(2, 1))

    def test_truncated_payload_rejected(self):
        blob = join(
            encode_hot_ingest(
                FrameType.INGEST_HOT, [0, 1], np.zeros((2, 8), dtype=np.float64)
            )
        )
        payload = blob[protocol._HEADER.size :]
        for cut in (4, len(payload) - 8):
            with pytest.raises(ProtocolError, match="hot ingest"):
                decode_payload(FrameType.INGEST_HOT, payload[:cut])

    def test_unknown_dtype_code_rejected(self):
        payload = protocol._HOT_INGEST_HEAD.pack(0, 200, 0)
        with pytest.raises(ProtocolError, match="dtype code"):
            decode_payload(FrameType.INGEST_HOT, payload)


class TestHotEventsRoundTrip:
    def events_table(self):
        events = [
            PeriodStartEvent("a", 10, 5, 0.75, True, seq=3),
            PeriodStartEvent("b", 11, 7, 1.0, False, seq=9),
        ]
        return events, protocol.events_to_array(events, {"a": 0, "b": 1})

    def test_table_handles_and_announces_survive(self):
        events, table = self.events_table()
        frame = roundtrip(
            encode_hot_events(
                FrameType.EVENTS_HOT, [5, 2], table, announce=[(5, "a"), (2, "b")]
            )
        )
        assert frame.type == FrameType.EVENTS_HOT
        assert frame.meta["handles"] == [5, 2]
        assert frame.meta["announce"] == [(5, "a"), (2, "b")]
        assert frame.arrays[0].dtype == EVENT_WIRE_DTYPE
        decoded = protocol.events_from_array(frame.arrays[0], ["a", "b"])
        assert decoded == events

    def test_empty_table_no_announces(self):
        table = protocol.events_to_array([], {})
        frame = roundtrip(encode_hot_events(FrameType.EVENTS_HOT, [], table))
        assert frame.meta == {"handles": [], "announce": []}
        assert frame.arrays[0].size == 0

    def test_non_ascii_announce_names(self):
        table = protocol.events_to_array([], {})
        frame = roundtrip(
            encode_hot_events(FrameType.EVENT_HOT, [0], table, announce=[(0, "señal/á")])
        )
        assert frame.meta["announce"] == [(0, "señal/á")]

    def test_trailing_garbage_rejected(self):
        table = protocol.events_to_array([], {})
        payload = join(encode_hot_events(FrameType.EVENTS_HOT, [], table))[
            protocol._HEADER.size :
        ]
        with pytest.raises(ProtocolError, match="trailing"):
            decode_payload(FrameType.EVENTS_HOT, payload + b"x")

    def test_truncated_announce_rejected(self):
        table = protocol.events_to_array([], {})
        payload = join(
            encode_hot_events(FrameType.EVENTS_HOT, [0], table, announce=[(0, "abc")])
        )[protocol._HEADER.size :]
        with pytest.raises(ProtocolError, match="hot event"):
            decode_payload(FrameType.EVENTS_HOT, payload[:6])

    def test_wire_rows_are_fixed_width(self):
        # The on-wire row layout is a packed struct: any change to it is a
        # protocol break and must bump PROTOCOL_VERSION.
        assert EVENT_WIRE_DTYPE.itemsize == 37
        assert [EVENT_WIRE_DTYPE[name].str for name in EVENT_WIRE_DTYPE.names] == [
            "<i4", "<i8", "<i8", "<f8", "|b1", "<i8"
        ]


class TestVersionStamping:
    def header_version(self, buffers) -> int:
        blob = join(buffers)
        _, version, _, _ = protocol._HEADER.unpack(blob[: protocol._HEADER.size])
        return version

    def test_json_frames_default_to_the_v2_baseline(self):
        # HELLO and un-negotiated traffic must stay readable by v2 peers.
        assert self.header_version(encode_frame(FrameType.HELLO, {})) == BASELINE_VERSION

    def test_negotiated_version_is_stamped(self):
        assert (
            self.header_version(encode_frame(FrameType.STATS, {}, version=3))
            == PROTOCOL_VERSION
        )
        assert (
            self.header_version(
                encode_hot_ingest(FrameType.INGEST_HOT, [0], np.zeros((1, 4)))
            )
            == PROTOCOL_VERSION
        )

    def test_future_version_header_rejected(self):
        blob = join(encode_hot_ingest(FrameType.INGEST_HOT, [0], np.zeros((1, 4))))
        corrupted = (
            blob[:4] + (PROTOCOL_VERSION + 1).to_bytes(2, "big") + blob[6:]
        )
        with pytest.raises(ProtocolError, match="newer"):
            decode_header(corrupted[: protocol._HEADER.size])
