"""Router-tier acceptance: one endpoint, N backends, identical events.

The contract under test is *event-for-event equivalence*: a producer
and a subscriber pointed at a router in front of N backend servers see
stream-for-stream exactly the events and seqs they would have seen
against one server holding the whole fleet — including

* across a node *join* with live snapshot-based stream migration,
* across a backend SIGKILL + respawn (``repro serve --state-dir``
  subprocess backends), and
* through REPLAY, whose answers fan in from every backend because a
  stream's journal history splits across nodes at each migration.

Plus the satellite behaviours: STATS aggregation (sums + the
``"mixed"`` merge), REMOVE leaving journals replayable, and protocol-v2
clients working through a v3 router.
"""

from __future__ import annotations

import os
import re
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from _server_helpers import event_config, event_traces
from repro.server.client import DetectionClient
from repro.server.router import RouterConfig, RouterThread, parse_backend
from repro.server.server import ServerConfig, ServerThread
from repro.service.pool import DetectorPool, PoolConfig
from repro.util.validation import ValidationError


def seq_view(events) -> dict[str, list[int]]:
    out: dict[str, list[int]] = {}
    for event in events:
        out.setdefault(event.stream_id, []).append(event.seq)
    return out


def keyed(events) -> dict[str, list[tuple]]:
    out: dict[str, list[tuple]] = {}
    for e in events:
        out.setdefault(e.stream_id, []).append(
            (e.seq, e.index, e.period, e.new_detection)
        )
    return out


def drain(client: DetectionClient, *, timeout: float = 0.5) -> list:
    out = []
    while True:
        batch = client.next_events(timeout=timeout)
        if batch is None:
            return out
        out.extend(batch)


def phases(traces: dict, cuts: tuple[int, ...]) -> list[dict]:
    bounds = (0,) + cuts
    return [
        {sid: tr[lo:hi] for sid, tr in traces.items()}
        for lo, hi in zip(bounds, cuts + (None,))
    ]


@pytest.fixture
def cluster(loopback):
    """Factory: a router in front of ``n`` loopback servers."""
    routers: list[RouterThread] = []

    def start(n: int, pool_config=None, config: RouterConfig | None = None):
        addresses = []
        for _ in range(n):
            _, host, port = loopback(pool_config)
            addresses.append(f"{host}:{port}")
        thread = RouterThread(addresses, config)
        routers.append(thread)
        host, port = thread.start()
        return thread, host, port

    yield start
    for thread in routers:
        thread.stop()


def run_workload(host, port, chunks, *, namespace="prod", subscribe=True):
    """Produce ``chunks`` and return (reply events, subscriber events)."""
    produced, seen = [], []
    with DetectionClient(host, port, namespace=namespace) as producer:
        subscriber = None
        if subscribe:
            subscriber = DetectionClient(host, port, namespace=namespace)
            subscriber.subscribe()
        try:
            for chunk in chunks:
                produced.extend(producer.ingest_many(chunk))
            if subscriber is not None:
                seen.extend(drain(subscriber, timeout=1.0))
        finally:
            if subscriber is not None:
                subscriber.close()
    return produced, seen


class TestEquivalence:
    def test_two_backends_match_one_server(self, loopback, cluster):
        traces = event_traces(8, samples=200)
        chunks = phases(traces, (100,))

        _, shost, sport = loopback()
        single, single_seen = run_workload(shost, sport, chunks)

        _, rhost, rport = cluster(2)
        routed, routed_seen = run_workload(rhost, rport, chunks)

        assert keyed(routed) == keyed(single)
        assert keyed(routed_seen) == keyed(single_seen) == keyed(single)

    def test_replay_through_router_matches_ingest_replies(self, cluster):
        traces = event_traces(6, samples=160)
        _, host, port = cluster(2)
        with DetectionClient(host, port, namespace="prod") as client:
            produced = client.ingest_many(traces)
            for sid in traces:
                events, gap = client.replay(sid, 0)
                assert gap is None
                assert keyed(events).get(sid, []) == keyed(produced).get(sid, [])

    def test_v2_client_works_through_the_router(self, cluster):
        traces = event_traces(5, samples=160)
        _, host, port = cluster(2)
        with DetectionClient(host, port, namespace="old", max_protocol=2) as v2:
            assert v2.protocol_version == 2
            produced = v2.ingest_many(traces)
        with DetectionClient(host, port, namespace="new") as v3:
            reference = v3.ingest_many(traces)
        assert keyed(produced) == keyed(reference)

    def test_lockstep_hot_path_is_forwarded_binary(self, cluster):
        rng = np.random.default_rng(3)
        t = np.arange(192, dtype=np.float64)
        traces = {
            f"sig-{i}": np.sin(2 * np.pi * t / (12 + i)) + 0.01 * rng.standard_normal(192)
            for i in range(8)
        }
        _, host, port = cluster(2, PoolConfig(mode="magnitude", window_size=64))
        with DetectionClient(host, port, namespace="prod") as client:
            for lo in range(0, 192, 64):
                client.ingest_lockstep({s: tr[lo : lo + 64] for s, tr in traces.items()})
            stats = client.stats()
            router = stats["server"]["router"]
            # Every lockstep frame forwarded on the binary hot path:
            # zero JSON ingests anywhere on the routed matrix path.
            assert router["hot_forwards"] == 3
            assert router["json_forwards"] == 0
            assert stats["pool"]["streams"] == len(traces)


class TestMembership:
    def test_join_migrates_and_preserves_event_equivalence(self, loopback, cluster):
        traces = event_traces(10, samples=240)
        chunks = phases(traces, (80, 160))

        _, shost, sport = loopback()
        single, single_seen = run_workload(shost, sport, chunks)

        thread, host, port = cluster(1)
        _, bhost, bport = loopback()
        produced, seen = [], []
        with DetectionClient(host, port, namespace="prod") as producer:
            subscriber = DetectionClient(host, port, namespace="prod")
            subscriber.subscribe()
            try:
                produced.extend(producer.ingest_many(chunks[0]))
                moved = thread.add_backend(f"{bhost}:{bport}")
                assert 0 < moved <= len(traces)
                produced.extend(producer.ingest_many(chunks[1]))
                produced.extend(producer.ingest_many(chunks[2]))
                seen.extend(drain(subscriber, timeout=1.0))
                # The fleet now really is two nodes, each holding a share.
                stats = producer.stats()
                per_node = [
                    block["pool"]["streams"]
                    for block in stats["server"]["backends"].values()
                ]
                assert sum(per_node) == len(traces)
                assert all(n > 0 for n in per_node)
            finally:
                subscriber.close()

        assert keyed(produced) == keyed(single)
        assert keyed(seen) == keyed(single_seen)

    def test_replay_fans_in_across_the_migration_split(self, loopback, cluster):
        # After a join, a migrated stream's journal history lives on two
        # nodes: the pre-move prefix on the old owner (REMOVE leaves the
        # journal alone), the tail on the new one.  REPLAY must fuse
        # them into one contiguous seq range.
        traces = event_traces(10, samples=240)
        chunks = phases(traces, (120,))
        thread, host, port = cluster(1)
        _, bhost, bport = loopback()
        with DetectionClient(host, port, namespace="prod") as client:
            produced = client.ingest_many(chunks[0])
            assert thread.add_backend(f"{bhost}:{bport}") > 0
            produced += client.ingest_many(chunks[1])
            expected = keyed(produced)
            for sid in traces:
                events, gap = client.replay(sid, 0)
                assert gap is None
                got = keyed(events).get(sid, [])
                assert got == expected.get(sid, [])
                assert [s for s, *_ in got] == list(range(len(got)))

    def test_leave_drains_the_node_and_events_continue(self, loopback, cluster):
        traces = event_traces(8, samples=240)
        chunks = phases(traces, (120,))
        thread, host, port = cluster(2)
        with DetectionClient(host, port, namespace="prod") as client:
            produced = client.ingest_many(chunks[0])
            leaving = thread.router.backends[0]
            thread.remove_backend(leaving)
            produced += client.ingest_many(chunks[1])
            stats = client.stats()
            assert leaving not in stats["server"]["router"]["backends"]
            assert stats["pool"]["streams"] == len(traces)
            # Seqs stay contiguous per stream across the drain.
            for sid, entries in keyed(produced).items():
                assert [s for s, *_ in entries] == list(range(len(entries)))

    def test_cannot_remove_the_last_backend(self, cluster):
        thread, _, _ = cluster(1)
        with pytest.raises(ValidationError):
            thread.remove_backend(thread.router.backends[0])


class TestStatsAndRemove:
    def test_stats_sum_pools_and_report_ring(self, cluster):
        traces = event_traces(9, samples=160)
        _, host, port = cluster(3)
        with DetectionClient(host, port, namespace="prod") as client:
            client.ingest_many(traces)
            stats = client.stats(periods=True)
            assert stats["pool"]["streams"] == len(traces)
            assert stats["pool"]["mode"] == "event"
            router = stats["server"]["router"]
            assert len(router["backends"]) == 3
            assert router["ring"]["placed_streams"] == len(traces)
            assert set(stats["periods"]) == set(traces)
            assert len(stats["server"]["backends"]) == 3

    def test_stats_mark_disagreeing_backends_mixed(self, loopback):
        # One event-mode and one magnitude-mode backend: the merged pool
        # block must not pretend the fleet is uniform.
        _, h1, p1 = loopback(event_config())
        _, h2, p2 = loopback(PoolConfig(mode="magnitude", window_size=32))
        thread = RouterThread([f"{h1}:{p1}", f"{h2}:{p2}"])
        try:
            host, port = thread.start()
            traces = event_traces(8, samples=96)
            with DetectionClient(host, port, namespace="prod") as client:
                client.ingest_many(traces)
                merged = client.stats()["pool"]
                assert merged["mode"] == "mixed"
        finally:
            thread.stop()

    def test_remove_drops_streams_but_keeps_the_journal(self, cluster):
        traces = event_traces(6, samples=160)
        _, host, port = cluster(2)
        with DetectionClient(host, port, namespace="prod") as client:
            produced = client.ingest_many(traces)
            victims = sorted(traces)[:3]
            assert client.remove_streams(victims) == len(victims)
            stats = client.stats()
            assert stats["pool"]["streams"] == len(traces) - len(victims)
            # The journaled history of a removed stream stays
            # replayable — that is what makes migration gap-free.
            for sid in victims:
                events, gap = client.replay(sid, 0)
                assert gap is None
                assert keyed(events).get(sid, []) == keyed(produced).get(sid, [])


# ----------------------------------------------------------------------
# SIGKILL a backend under a live router
# ----------------------------------------------------------------------
_LISTENING = re.compile(r"listening on ([0-9.]+):(\d+)")
_STARTUP_TIMEOUT = 30.0
_SYNC_TIMEOUT = 30.0


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _serve(state_dir: Path, port: int) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONUNBUFFERED"] = "1"
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--host", "127.0.0.1", "--port", str(port),
            "--mode", "event", "--window", "32",
            "--state-dir", str(state_dir),
            "--checkpoint-interval", "0.2",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        env=env,
        text=True,
        start_new_session=True,
    )
    deadline = time.monotonic() + _STARTUP_TIMEOUT
    line = ""
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        if _LISTENING.search(line):
            return proc
    proc.kill()
    pytest.fail(f"backend never reported a listening port (last line: {line!r})")


def _sigkill(proc: subprocess.Popen) -> None:
    try:
        os.killpg(proc.pid, signal.SIGKILL)
    except (ProcessLookupError, PermissionError):
        proc.kill()
    proc.wait(timeout=10)


def _reap(proc: subprocess.Popen) -> None:
    if proc.poll() is None:
        _sigkill(proc)
    proc.stdout.close()
    proc.wait(timeout=10)


def _wait_durable(client: DetectionClient, backend: str) -> None:
    """Wait for an idle checkpoint pass on ``backend``, via router STATS."""

    def idle_passes() -> int:
        block = client.stats()["server"]["backends"][backend]
        return block["server"]["checkpoint"]["idle_passes"]

    baseline = idle_passes()
    deadline = time.monotonic() + _SYNC_TIMEOUT
    while time.monotonic() < deadline:
        if idle_passes() > baseline:
            return
        time.sleep(0.05)
    pytest.fail("no idle checkpoint pass observed; cannot certify durability")


def test_backend_sigkill_and_respawn_resumes_exact_seqs(tmp_path, loopback):
    """Kill one backend of a live cluster; respawn it on the same port.

    The producer keeps working (the router reconnects with backoff),
    and the subscriber ends with exactly the per-stream seq sequence an
    uninterrupted single-server run produces — outage losses come back
    through the router's replay fan-in from the respawned journal.
    """
    traces = event_traces(6, samples=240)
    chunks = phases(traces, (120,))

    _, shost, sport = loopback()
    single, _ = run_workload(shost, sport, chunks, subscribe=False)

    ports = [_free_port(), _free_port()]
    states = [tmp_path / "b0", tmp_path / "b1"]
    procs = [_serve(states[i], ports[i]) for i in range(2)]
    addresses = [f"127.0.0.1:{p}" for p in ports]
    thread = RouterThread(
        addresses, RouterConfig(connect_retries=10, retry_delay=0.1)
    )
    gaps: list = []
    try:
        host, port = thread.start()
        with DetectionClient(host, port, namespace="prod") as producer:
            subscriber = DetectionClient(
                host, port, namespace="prod", on_gap=lambda *a: gaps.append(a)
            )
            subscriber.subscribe()
            try:
                produced = producer.ingest_many(chunks[0])
                for backend in addresses:
                    _wait_durable(producer, backend)

                victim = 0
                _sigkill(procs[victim])
                procs[victim] = _serve(states[victim], ports[victim])

                produced += producer.ingest_many(chunks[1])
                seen = drain(subscriber, timeout=1.0)
                # Pushes lost while the subscriber's link re-subscribed
                # have no later push to reveal them; resync catches the
                # journal tail through the replay fan-in.
                seen += subscriber.resync(sorted(traces))
            finally:
                subscriber.close()
    finally:
        thread.stop()
        for proc in procs:
            _reap(proc)

    assert gaps == []  # every journaled range survived the crash
    assert keyed(produced) == keyed(single)
    assert keyed(seen) == keyed(single)


class TestConfigValidation:
    def test_backend_addresses_must_parse(self):
        assert parse_backend("127.0.0.1:8757") == ("127.0.0.1", 8757)
        with pytest.raises(ValidationError):
            parse_backend("no-port")
        with pytest.raises(ValidationError):
            parse_backend(":123")
        with pytest.raises(ValidationError):
            parse_backend("host:abc")

    def test_router_needs_a_backend(self):
        from repro.server.router import DetectionRouter

        with pytest.raises(ValidationError):
            DetectionRouter([])

    def test_config_bounds(self):
        with pytest.raises(ValidationError):
            RouterConfig(replicas=0)
        with pytest.raises(ValidationError):
            RouterConfig(retry_delay=0.0)
        with pytest.raises(ValidationError):
            RouterConfig(max_protocol=99)
