"""Consistent-hash ring properties the router tier depends on.

Placement must be a pure function of (node names, key) — stable across
processes, runs and construction orders — and membership changes must
move only ~1/N of a large key population.  Violating either silently
breaks router migrations: streams would re-home en masse (or
differently on a router restart) without any SNAPSHOT/RESTORE moving
their state.
"""

from __future__ import annotations

import random

import pytest

from repro.service.sharding import HashRing
from repro.util.validation import ValidationError

NODES = ["node-a:1", "node-b:2", "node-c:3"]


def keys(count: int) -> list[str]:
    return [f"ns/s{i}" for i in range(count)]


class TestStablePlacement:
    def test_pinned_placements_never_change(self):
        # Literal expected values: crc32 is process- and platform-stable,
        # so these pins hold across interpreter restarts and machines.
        # If this test fails, the ring function changed and every
        # already-placed cluster would re-home streams on router restart.
        ring = HashRing(NODES)
        assert ring.node_of("ns/s0") == "node-c:3"
        assert ring.node_of("ns/s1") == "node-c:3"
        assert ring.node_of("ns/s2") == "node-a:1"
        assert ring.node_of("prod/app-7") == "node-a:1"
        assert ring.node_of("x/y") == "node-c:3"

    def test_construction_order_is_irrelevant(self):
        population = keys(500)
        baseline = HashRing(NODES)
        for seed in range(5):
            shuffled = NODES[:]
            random.Random(seed).shuffle(shuffled)
            ring = HashRing(shuffled)
            assert [ring.node_of(k) for k in population] == [
                baseline.node_of(k) for k in population
            ]

    def test_incremental_add_equals_bulk_construction(self):
        population = keys(500)
        bulk = HashRing(NODES)
        grown = HashRing()
        for node in reversed(NODES):
            grown.add(node)
        assert [grown.node_of(k) for k in population] == [
            bulk.node_of(k) for k in population
        ]

    def test_two_instances_agree(self):
        a, b = HashRing(NODES), HashRing(NODES)
        for key in keys(200):
            assert a.node_of(key) == b.node_of(key)


class TestMembershipChurn:
    def test_join_remaps_at_most_two_over_n(self):
        # The consistent-hashing contract the router's join cost rests
        # on: going from N to N+1 nodes re-homes ~1/(N+1) of the keys.
        # Allow 2x slack for hash-placement variance — still a far cry
        # from the ~(N-1)/N a modulo scheme would move.
        population = keys(5000)
        nodes = [f"node-{i}:{7000 + i}" for i in range(4)]
        before = HashRing(nodes)
        old = {k: before.node_of(k) for k in population}
        after = HashRing(nodes + ["node-4:7004"])
        moved = sum(1 for k in population if after.node_of(k) != old[k])
        n = len(nodes) + 1
        assert moved <= 2 * len(population) / n
        # Every moved key lands on the new node — a join never shuffles
        # keys between the old nodes.
        for k in population:
            if after.node_of(k) != old[k]:
                assert after.node_of(k) == "node-4:7004"

    def test_leave_is_the_inverse_of_join(self):
        population = keys(1000)
        ring = HashRing(NODES)
        placed = {k: ring.node_of(k) for k in population}
        ring.add("node-d:4")
        ring.remove("node-d:4")
        assert {k: ring.node_of(k) for k in population} == placed

    def test_leave_only_rehomes_the_leavers_keys(self):
        population = keys(2000)
        ring = HashRing(NODES)
        placed = {k: ring.node_of(k) for k in population}
        ring.remove("node-b:2")
        for k in population:
            if placed[k] != "node-b:2":
                assert ring.node_of(k) == placed[k]
            else:
                assert ring.node_of(k) != "node-b:2"


class TestRingApi:
    def test_partition_groups_every_key_once(self):
        ring = HashRing(NODES)
        population = keys(300)
        parts = ring.partition(population)
        assert sorted(sid for group in parts.values() for sid in group) == sorted(
            population
        )
        for node, group in parts.items():
            assert group  # empty nodes are omitted
            for sid in group:
                assert ring.node_of(sid) == node

    def test_membership_introspection(self):
        ring = HashRing(NODES)
        assert len(ring) == 3
        assert "node-a:1" in ring
        assert "node-z:9" not in ring
        assert ring.nodes == sorted(NODES)
        ring.add("node-a:1")  # idempotent
        assert len(ring) == 3
        ring.remove("node-z:9")  # idempotent
        assert len(ring) == 3

    def test_empty_ring_and_empty_name_are_errors(self):
        ring = HashRing()
        with pytest.raises(ValidationError):
            ring.node_of("ns/s0")
        with pytest.raises(ValidationError):
            ring.add("")
        with pytest.raises(ValidationError):
            HashRing(NODES, replicas=0)
