"""Server behaviour under pool LRU eviction and across client reconnects.

Two failure modes this suite pins down:

* the server's pool evicts idle streams (``max_streams``) — remote
  behaviour must match a direct pool with the same bound, and an
  evicted stream must restart transparently (fresh indices, no error);
* a client that disconnects and reconnects into the same namespace must
  be able to carry its detector state over (snapshot before, restore
  after) so events *resume* exactly as if the connection never dropped —
  and a ``fresh`` handshake must leave no stale stream state behind.
"""

import numpy as np
import pytest

from _server_helpers import event_config, event_traces
from repro.server.client import DetectionClient
from repro.service.pool import DetectorPool

from test_server import keyed


class TestLRUEviction:
    def test_eviction_matches_direct_pool(self, loopback):
        config = event_config(max_streams=2)
        _, host, port = loopback(config)
        traces = event_traces(4, samples=120)
        remote = []
        with DetectionClient(host, port, namespace="n") as client:
            for sid, values in traces.items():
                remote.extend(client.ingest(sid, values))
            remote_stats = client.stats()

        pool = DetectorPool(event_config(max_streams=2))
        direct = []
        for sid, values in traces.items():
            direct.extend(pool.ingest(f"n/{sid}", values))
        assert keyed(remote) == keyed(direct, strip="n/")
        assert remote_stats["pool"]["evicted"] == pool.stats().evicted > 0
        assert remote_stats["pool"]["streams"] == 2

    def test_evicted_stream_restarts_from_scratch(self, loopback):
        _, host, port = loopback(event_config(max_streams=1))
        trace = np.tile(np.arange(4), 30)
        with DetectionClient(host, port, namespace="n") as client:
            first = client.ingest("a", trace)
            client.ingest("b", trace)  # evicts "a"
            again = client.ingest("a", trace)  # recreated, indices reset
            assert keyed(first) == keyed(again)

    def test_snapshot_skips_evicted_streams(self, loopback):
        _, host, port = loopback(event_config(max_streams=1))
        trace = np.tile(np.arange(4), 30)
        with DetectionClient(host, port, namespace="n") as client:
            client.ingest("a", trace)
            client.ingest("b", trace)  # evicts "a"
            snap = client.snapshot(["a", "b"])
            assert list(snap) == ["b"]


class TestReconnect:
    def test_events_resume_after_snapshot_restore(self, loopback):
        _, host, port = loopback(event_config())
        traces = event_traces(3, samples=180)
        head = {sid: v[:90] for sid, v in traces.items()}
        tail = {sid: v[90:] for sid, v in traces.items()}

        with DetectionClient(host, port, namespace="agent") as client:
            head_events = client.ingest_many(head)
            snap = client.snapshot()
            assert set(snap) == set(traces)

        # Reconnect into a clean namespace, carry the state over, resume.
        with DetectionClient(host, port, namespace="agent", fresh=True) as client:
            assert client.server_info["removed_streams"] == len(traces)
            assert client.restore(snap) == len(traces)
            tail_events = client.ingest_many(tail)
            stats = client.stats(periods=True)

        pool = DetectorPool(event_config())
        direct_head = pool.ingest_many({f"agent/{s}": v for s, v in head.items()})
        direct_tail = pool.ingest_many({f"agent/{s}": v for s, v in tail.items()})
        assert keyed(head_events) == keyed(direct_head, strip="agent/")
        assert keyed(tail_events) == keyed(direct_tail, strip="agent/")
        for sid in traces:
            assert stats["periods"][sid] == pool.current_period(f"agent/{sid}")

    def test_restored_counters_survive_the_roundtrip(self, loopback):
        _, host, port = loopback(event_config())
        trace = np.tile(np.arange(5), 40)
        with DetectionClient(host, port, namespace="agent") as client:
            client.ingest("app", trace)
            before = client.snapshot()["app"]
        with DetectionClient(host, port, namespace="agent", fresh=True) as client:
            client.restore({"app": before})
            after = client.snapshot()["app"]
        assert after["samples"] == before["samples"] == trace.size
        assert after["events"] == before["events"]

    def test_fresh_reconnect_without_restore_has_no_stale_state(self, loopback):
        _, host, port = loopback(event_config())
        trace = np.tile(np.arange(4), 30)
        with DetectionClient(host, port, namespace="agent") as client:
            first = client.ingest("app", trace)
            assert client.stats(periods=True)["periods"] == {"app": 4}
        with DetectionClient(host, port, namespace="agent", fresh=True) as client:
            # No streams left behind ...
            assert client.stats(periods=True)["periods"] == {}
            assert client.snapshot() == {}
            # ... and re-ingesting starts from scratch (indices reset).
            again = client.ingest("app", trace)
            assert keyed(again) == keyed(first)

    def test_reconnect_without_fresh_continues_in_place(self, loopback):
        _, host, port = loopback(event_config())
        trace = np.tile(np.arange(6), 30)
        with DetectionClient(host, port, namespace="agent") as client:
            client.ingest("app", trace[:90])
        # Same namespace, no fresh flag: the server-side stream is still
        # live, so ingestion continues where the last connection stopped.
        with DetectionClient(host, port, namespace="agent") as client:
            tail = client.ingest("app", trace[90:])
        pool = DetectorPool(event_config())
        pool.ingest("app", trace[:90])
        expected = pool.ingest("app", trace[90:])
        assert keyed(tail, strip="")["app"] == keyed(expected)["app"]

    def test_restore_rejects_garbage(self, loopback):
        from repro.server.client import ServerError

        _, host, port = loopback(event_config())
        with DetectionClient(host, port, namespace="x") as client:
            with pytest.raises(ServerError):
                client.restore({"app": {"state": {"kind": "nonsense"}}})
