"""Unit tests of the framed wire protocol (no sockets involved)."""

import numpy as np
import pytest

from repro.server import protocol
from repro.server.protocol import (
    EVENT_DTYPE,
    FrameType,
    MAX_PAYLOAD_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_header,
    decode_payload,
    encode_frame,
    pack_object,
    unpack_object,
)
from repro.service.events import PeriodStartEvent


def roundtrip(ftype, meta=None, arrays=()):
    buffers = encode_frame(ftype, meta, arrays)
    blob = b"".join(bytes(b) for b in buffers)
    head = protocol._HEADER.size
    kind, payload_len = decode_header(blob[:head])
    assert kind == ftype
    payload = blob[head:]
    assert len(payload) == payload_len
    return decode_payload(kind, payload)


class TestFrameRoundTrip:
    def test_meta_only(self):
        frame = roundtrip(FrameType.HELLO, {"namespace": "a", "fresh": False})
        assert frame.type == FrameType.HELLO
        assert frame.meta == {"namespace": "a", "fresh": False}
        assert frame.arrays == ()

    def test_arrays_carry_dtype_shape_and_values(self):
        batch = np.arange(12, dtype=np.float64).reshape(3, 4)
        ids = np.arange(5, dtype=np.int64)
        frame = roundtrip(FrameType.INGEST, {"streams": ["x"]}, [batch, ids])
        np.testing.assert_array_equal(frame.arrays[0], batch)
        assert frame.arrays[0].dtype == np.float64
        np.testing.assert_array_equal(frame.arrays[1], ids)
        assert frame.arrays[1].dtype == np.int64

    def test_decoded_arrays_are_zero_copy_views(self):
        batch = np.arange(1024, dtype=np.float64)
        frame = roundtrip(FrameType.INGEST, {"streams": ["x"]}, [batch])
        # A view into the received payload buffer, not a fresh allocation.
        assert frame.arrays[0].base is not None

    def test_encode_does_not_copy_large_arrays(self):
        batch = np.arange(4096, dtype=np.float64)
        buffers = encode_frame(FrameType.INGEST, {"streams": ["x"]}, [batch])
        views = [b for b in buffers if isinstance(b, memoryview)]
        assert len(views) == 1
        assert views[0].obj is batch  # the array's own memory

    def test_structured_event_table(self):
        events = [
            PeriodStartEvent("a", 10, 5, 0.75, True),
            PeriodStartEvent("b", 11, 7, 1.0, False),
        ]
        table = protocol.events_to_array(events, {"a": 0, "b": 1})
        frame = roundtrip(FrameType.EVENTS, {"streams": ["a", "b"]}, [table])
        assert frame.arrays[0].dtype == EVENT_DTYPE
        assert protocol.events_from_array(frame.arrays[0], ["a", "b"]) == events

    def test_empty_event_table(self):
        table = protocol.events_to_array([], {})
        frame = roundtrip(FrameType.EVENTS, {"streams": []}, [table])
        assert frame.arrays[0].size == 0
        assert protocol.events_from_array(frame.arrays[0], []) == []

    def test_non_contiguous_arrays_are_made_contiguous(self):
        matrix = np.arange(24, dtype=np.float64).reshape(4, 6)
        frame = roundtrip(FrameType.INGEST, {"streams": ["x"]}, [matrix[:, ::2]])
        np.testing.assert_array_equal(frame.arrays[0], matrix[:, ::2])


class TestFrameErrors:
    def test_bad_magic(self):
        with pytest.raises(ProtocolError, match="magic"):
            decode_header(b"NOPE" + bytes(protocol._HEADER.size - 4))

    def test_newer_version_rejected(self):
        blob = b"".join(bytes(b) for b in encode_frame(FrameType.STATS, {}))
        corrupted = blob[:4] + (PROTOCOL_VERSION + 1).to_bytes(2, "big") + blob[6:]
        with pytest.raises(ProtocolError, match="newer"):
            decode_header(corrupted[: protocol._HEADER.size])

    def test_unknown_frame_type(self):
        blob = b"".join(bytes(b) for b in encode_frame(FrameType.STATS, {}))
        corrupted = blob[:6] + (999).to_bytes(2, "big") + blob[8:]
        with pytest.raises(ProtocolError, match="unknown frame type"):
            decode_header(corrupted[: protocol._HEADER.size])

    def test_oversized_payload_rejected(self):
        header = protocol._HEADER.pack(
            protocol.MAGIC, PROTOCOL_VERSION, int(FrameType.STATS), MAX_PAYLOAD_BYTES + 1
        )
        with pytest.raises(ProtocolError, match="exceeds"):
            decode_header(header)

    def test_truncated_payloads(self):
        buffers = encode_frame(FrameType.INGEST, {"s": 1}, [np.arange(8.0)])
        payload = b"".join(bytes(b) for b in buffers)[protocol._HEADER.size :]
        for cut in (1, len(payload) - 17):
            with pytest.raises(ProtocolError, match="truncated"):
                decode_payload(FrameType.INGEST, payload[:cut])

    def test_trailing_garbage_rejected(self):
        payload = b"".join(bytes(b) for b in encode_frame(FrameType.STATS, {}))[protocol._HEADER.size :]
        with pytest.raises(ProtocolError, match="trailing"):
            decode_payload(FrameType.STATS, payload + b"x")

    def test_non_object_meta_rejected(self):
        import struct

        bad = struct.pack("!I", 2) + b"[]"
        with pytest.raises(ProtocolError, match="JSON object"):
            decode_payload(FrameType.STATS, bad)


class TestPackObject:
    def test_snapshot_shaped_tree(self):
        state = {
            "kind": "magnitude",
            "buffer": np.arange(16, dtype=np.float64),
            "sums": np.zeros(5),
            "fill": 16,
            "lock": {
                "period": 4,
                "confidence": 0.5,
                "detected": {4: 2, 8: 1},  # int keys: JSON-hostile
            },
            "nothing": None,
            "pair": (1, 2),
        }
        tree, arrays = pack_object(state)
        restored = unpack_object(tree, arrays)
        assert restored["kind"] == "magnitude"
        np.testing.assert_array_equal(restored["buffer"], state["buffer"])
        assert restored["lock"]["detected"] == {4: 2, 8: 1}
        assert restored["nothing"] is None
        assert restored["pair"] == (1, 2)
        assert isinstance(tree, dict)
        import json

        json.dumps(tree)  # the skeleton must be pure JSON

    def test_numpy_scalars_become_python(self):
        tree, arrays = pack_object({"n": np.int64(7), "x": np.float64(0.5), "b": np.bool_(True)})
        assert not arrays
        assert unpack_object(tree, arrays) == {"n": 7, "x": 0.5, "b": True}

    def test_unserialisable_type_raises(self):
        with pytest.raises(ProtocolError, match="cannot serialise"):
            pack_object({"bad": object()})

    def test_unpacked_arrays_are_owned_copies(self):
        tree, arrays = pack_object({"a": np.arange(4.0)})
        restored = unpack_object(tree, arrays)
        assert restored["a"].flags.owndata


class TestMalformedDescriptors:
    """Peer protocol violations must surface as ProtocolError (the server
    answers those with an ERROR frame) — never as TypeError/KeyError."""

    @pytest.mark.parametrize(
        "descriptors",
        [
            "not-a-list",
            [None],
            [{}],
            [{"dtype": "<f8"}],  # missing shape/nbytes
            [{"dtype": "O", "shape": [1], "nbytes": 8}],  # object dtype
            [{"dtype": 12, "shape": [1], "nbytes": 8}],
        ],
    )
    def test_bad_array_descriptors(self, descriptors):
        import json
        import struct

        meta = json.dumps({"__arrays__": descriptors}).encode()
        payload = struct.pack("!I", len(meta)) + meta + bytes(8)
        with pytest.raises(ProtocolError):
            decode_payload(FrameType.INGEST, payload)
