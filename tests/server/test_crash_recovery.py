"""Kill -9 acceptance tests: ``repro serve --state-dir`` warm restarts.

These tests run the real daemon as a subprocess, SIGKILL it mid-flight
(no drain, no final checkpoint — the hardest crash the OS can deliver)
and assert the zero-stream-loss contract of the durable-state subsystem:
a subscriber resuming against the restarted server receives exactly the
per-stream event sequence an uninterrupted run would have produced, and
``on_gap`` stays silent because every journaled range survives.

Two sync disciplines are exercised:

* *checkpointed* crash — wait for an idle checkpoint pass after the last
  ingest (an idle pass proves everything prior is durable), then kill:
  recovery must be byte-exact and complete;
* *unsynchronised* crash — kill while checkpoints may be mid-write:
  recovery must still load cleanly (atomic segments + manifest ordering)
  and yield a contiguous *prefix* of the live run — never a gap, never a
  corrupted store.
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from _server_helpers import event_traces
from repro.server.client import DetectionClient

_LISTENING = re.compile(r"listening on ([0-9.]+):(\d+)")
_STARTUP_TIMEOUT = 30.0
_SYNC_TIMEOUT = 30.0


def _serve(state_dir: Path, *extra: str) -> tuple[subprocess.Popen, str, int]:
    """Launch ``repro serve --state-dir`` on an ephemeral port."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONUNBUFFERED"] = "1"
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--host", "127.0.0.1", "--port", "0",
            "--mode", "event", "--window", "32",
            "--state-dir", str(state_dir),
            "--checkpoint-interval", "0.2",
            *extra,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        env=env,
        text=True,
        start_new_session=True,
    )
    deadline = time.monotonic() + _STARTUP_TIMEOUT
    line = ""
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break  # process died; fall through to the failure path
        match = _LISTENING.search(line)
        if match:
            return proc, match.group(1), int(match.group(2))
    proc.kill()
    pytest.fail(f"server never reported a listening port (last line: {line!r})")


def _wait_durable(client: DetectionClient) -> None:
    """Block until a checkpoint pass finds nothing left to write.

    ``client.ingest`` is synchronous, so once the last ingest returned
    the dirty set is final; the next *idle* pass therefore proves every
    prior sample and journal entry reached disk.
    """
    baseline = client.stats()["server"]["checkpoint"]["idle_passes"]
    deadline = time.monotonic() + _SYNC_TIMEOUT
    while time.monotonic() < deadline:
        if client.stats()["server"]["checkpoint"]["idle_passes"] > baseline:
            return
        time.sleep(0.05)
    pytest.fail("no idle checkpoint pass observed; cannot certify durability")


def _sigkill(proc: subprocess.Popen) -> None:
    """SIGKILL the daemon *and* its process group.

    A sharded daemon (``--workers N``) has multiprocessing children that
    would survive a parent-only kill and leak past the test; killing the
    whole session group is also the honest crash simulation — a machine
    failure takes every process down at once.
    """
    try:
        os.killpg(proc.pid, signal.SIGKILL)
    except (ProcessLookupError, PermissionError):
        proc.kill()
    proc.wait(timeout=10)


def _reap(proc: subprocess.Popen) -> None:
    if proc.poll() is None:
        _sigkill(proc)
    proc.stdout.close()
    proc.wait(timeout=10)


@pytest.mark.parametrize(
    "extra", [(), ("--workers", "2")], ids=["plain", "sharded-2w"]
)
def test_sigkill_then_restart_resumes_exact_seqs(tmp_path, extra):
    state = tmp_path / "state"
    traces = event_traces(4, samples=180)
    live: dict[str, list] = {sid: [] for sid in traces}
    gaps: list = []

    proc, host, port = _serve(state, *extra)
    try:
        with DetectionClient(host, port, namespace="ns") as client:
            for sid, trace in traces.items():
                half = len(trace) // 2
                live[sid].extend(client.ingest(sid, trace[:half]))
            for sid, trace in traces.items():
                live[sid].extend(client.ingest(sid, trace[len(trace) // 2 :]))
            _wait_durable(client)
        _sigkill(proc)  # SIGKILL: no drain, no final checkpoint
    finally:
        _reap(proc)

    proc2, host, port = _serve(state, *extra)
    try:
        with DetectionClient(
            host, port, namespace="ns", on_gap=lambda *a: gaps.append(a)
        ) as client:
            restore = client.stats()["server"]["restore"]
            assert restore["streams"] == len(traces)
            assert restore["segments_skipped"] == 0
            client.subscribe()
            for sid, events in live.items():
                recovered = client.resync([sid])
                assert [e.seq for e in recovered] == [e.seq for e in events]
                assert [e.index for e in recovered] == [e.index for e in events]
                assert [e.period for e in recovered] == [e.period for e in events]
            # Ingestion continues the numbering exactly where the
            # pre-crash run left off — no reset, no jump.
            more = client.ingest("app-0", traces["app-0"][:40])
            if live["app-0"] and more:
                assert more[0].seq == live["app-0"][-1].seq + 1
        assert gaps == []
    finally:
        _reap(proc2)


def test_sigkill_mid_checkpoint_loads_contiguous_prefix(tmp_path):
    """An unsynchronised SIGKILL may lose the tail, never the middle.

    With a 50 ms checkpoint interval the kill lands with high likelihood
    while a pass is writing; the atomic segment + manifest discipline
    must leave a store that restores to a contiguous prefix of the live
    run (seqs ``0..k`` with identical payloads), with no gap reported.
    """
    state = tmp_path / "state"
    trace = np.asarray(event_traces(1, samples=600)["app-0"], dtype=np.float64)
    live: list = []
    gaps: list = []

    proc, host, port = _serve(state, "--checkpoint-interval", "0.05")
    try:
        with DetectionClient(host, port, namespace="ns") as client:
            for start in range(0, len(trace), 30):
                live.extend(client.ingest("app", trace[start : start + 30]))
        _sigkill(proc)  # no sync: a pass is likely mid-write right now
    finally:
        _reap(proc)

    proc2, host, port = _serve(state)
    try:
        with DetectionClient(
            host, port, namespace="ns", on_gap=lambda *a: gaps.append(a)
        ) as client:
            client.stats()  # the store loaded and the daemon answers
            client.subscribe()
            recovered = client.resync(["app"])
        assert gaps == []
        k = len(recovered)
        assert k <= len(live)
        assert [e.seq for e in recovered] == [e.seq for e in live[:k]]
        assert [e.index for e in recovered] == [e.index for e in live[:k]]
    finally:
        _reap(proc2)
