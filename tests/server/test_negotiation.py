"""Version negotiation between v2 and v3 peers, and handle-table faults.

The compatibility contract of the wire-hot-path PR: every pairing of a
v2 peer with a v3 peer settles on the v2 JSON protocol and behaves
exactly like the pre-v3 deployment, while v3<->v3 pairs use the binary
hot frames — with identical events either way.  Handle faults (unknown
or stale handles on a hot frame) are request errors, never connection
teardowns.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from _server_helpers import event_config, event_traces, magnitude_traces
from repro.server.client import AsyncDetectionClient, DetectionClient, ServerError
from repro.server.protocol import PROTOCOL_VERSION, FrameType
from repro.server.server import ServerConfig
from repro.service.pool import DetectorPool


def keyed(events, strip=""):
    per_stream: dict[str, list] = {}
    for e in events:
        per_stream.setdefault(e.stream_id.removeprefix(strip), []).append(
            (e.index, e.period, e.new_detection, e.seq)
        )
    return per_stream


def direct(traces, namespace, lockstep=False):
    pool = DetectorPool(event_config())
    prefixed = {f"{namespace}/{sid}": v for sid, v in traces.items()}
    events = pool.ingest_lockstep(prefixed) if lockstep else pool.ingest_many(prefixed)
    return keyed(events, strip=f"{namespace}/")


# ----------------------------------------------------------------------
# negotiation matrix
# ----------------------------------------------------------------------
class TestNegotiationMatrix:
    def test_v3_client_v3_server_settles_on_v3(self, loopback):
        _, host, port = loopback()
        traces = event_traces(6, samples=128)
        with DetectionClient(host, port, namespace="n") as client:
            assert client.protocol_version == PROTOCOL_VERSION
            remote = keyed(client.ingest_many(traces))
            stats = client.stats()["server"]
            assert stats["protocol"]["connection"] == PROTOCOL_VERSION
            # The hot path actually carried the ingest: handles were
            # interned for every stream of the fleet.
            assert set(client._handles.of_name) == set(traces)
        assert remote == direct(traces, "n")

    def test_v2_client_v3_server_settles_on_v2(self, loopback):
        """A frozen-v2 client (max_protocol=2) gets pre-v3 behaviour."""
        _, host, port = loopback()
        traces = event_traces(6, samples=128)
        with DetectionClient(host, port, namespace="n", max_protocol=2) as client:
            assert client.protocol_version == 2
            remote = keyed(client.ingest_many(traces))
            assert client.stats()["server"]["protocol"]["connection"] == 2
            # No handles were ever interned on a v2 connection.
            assert client._handles.of_name == {}
        assert remote == direct(traces, "n")

    def test_v3_client_v2_server_settles_on_v2(self, loopback):
        """A v3 client against an old server falls back to JSON frames."""
        _, host, port = loopback(server_config=ServerConfig(port=0, max_protocol=2))
        traces = event_traces(6, samples=128)
        with DetectionClient(host, port, namespace="n") as client:
            assert client.protocol_version == 2
            remote = keyed(client.ingest_many(traces))
            lock = keyed(client.ingest_lockstep(traces))
            assert client._handles.of_name == {}
        assert remote == direct(traces, "n")
        assert lock  # the JSON lockstep path still produced events

    def test_v2_server_rejects_out_of_version_frames(self, loopback):
        """Defence in depth: hot frames at a frozen-v2 server are refused.

        A pre-v3 server would not even have REGISTER in its frame enum —
        the violation surfaces as an ERROR and the peer is dropped, which
        is exactly what the frozen-v2 emulation reproduces.  A correct
        client never hits this: negotiation already settled on v2.
        """
        _, host, port = loopback(server_config=ServerConfig(port=0, max_protocol=2))
        with DetectionClient(host, port, namespace="n") as client:
            with pytest.raises((ServerError, ConnectionError), match="REGISTER|closed"):
                client._send(FrameType.REGISTER, {"streams": ["x"]})
                client._check(client._read_reply())
                client._read_reply()  # protocol violations drop the peer


class TestV2ClientFullSurface:
    def test_lockstep_subscribe_and_replay_on_v2(self, loopback):
        """The whole request surface works for a frozen-v2 client."""
        _, host, port = loopback(
            server_config=ServerConfig(port=0, journal_size=4096)
        )
        traces = event_traces(4, samples=96)
        with DetectionClient(host, port, namespace="n", max_protocol=2) as client:
            client.subscribe("own")
            events = client.ingest_lockstep(traces)
            assert keyed(events) == direct(traces, "n", lockstep=True)
            stream = events[0].stream_id
            replayed, gap = client.replay(stream, 0)
            assert gap is None
            want = sorted(e.seq for e in events if e.stream_id == stream)
            assert [e.seq for e in replayed] == want
            assert client.stats()["server"]["protocol"]["connection"] == 2

    def test_v2_and_v3_subscribers_see_identical_pushes(self, loopback):
        """EVENT (JSON) and EVENT_HOT (binary) pushes carry the same events."""
        _, host, port = loopback()
        traces = event_traces(3, samples=96)
        with DetectionClient(host, port, namespace="n", max_protocol=2) as old, \
                DetectionClient(host, port, namespace="n") as new, \
                DetectionClient(host, port, namespace="n") as writer:
            old.subscribe("all")
            new.subscribe("all")
            produced = writer.ingest_many(traces)
            assert produced

            def drain(sub):
                got = []
                while len(got) < len(produced):
                    batch = sub.next_events(timeout=5.0)
                    assert batch is not None, "push never arrived"
                    got.extend(batch)
                # scope-"all" pushes name streams with their namespace.
                return keyed(got, strip="n/")

            assert drain(old) == drain(new) == keyed(produced)


class TestAsyncNegotiation:
    def test_async_client_negotiates_and_falls_back(self, loopback):
        _, host, port = loopback()
        _, host2, port2 = loopback(
            server_config=ServerConfig(port=0, max_protocol=2)
        )
        traces = event_traces(4, samples=96)

        async def run():
            new = await AsyncDetectionClient.connect(host, port, namespace="n")
            old = await AsyncDetectionClient.connect(host2, port2, namespace="n")
            try:
                assert new.protocol_version == PROTOCOL_VERSION
                assert old.protocol_version == 2
                a = keyed(await new.ingest_many(traces))
                b = keyed(await old.ingest_many(traces))
            finally:
                await new.close()
                await old.close()
            return a, b

        a, b = asyncio.run(run())
        assert a == b == direct(traces, "n")


# ----------------------------------------------------------------------
# handle-table faults
# ----------------------------------------------------------------------
class TestHandleFaults:
    def test_unknown_handle_is_an_error_not_a_disconnect(self, loopback):
        _, host, port = loopback()
        matrix = (np.arange(32.0) % 4).reshape(1, -1)
        with DetectionClient(host, port, namespace="n") as client:
            client._send_hot(FrameType.INGEST_HOT, [99], matrix)
            with pytest.raises(ServerError, match="handle"):
                client._check(client._read_reply())
            # Same socket keeps serving requests afterwards.
            assert client.ingest("x", np.arange(64.0) % 4)
            assert client.stats()["server"]["connections"] == 1

    def test_stale_handles_after_reconnect_are_rejected(self, loopback):
        """Handle tables are per-connection: a fresh socket knows none."""
        _, host, port = loopback()
        traces = event_traces(3, samples=64)
        with DetectionClient(host, port, namespace="n") as client:
            client.ingest_many(traces)
            stale = [client._handles.of_name[sid] for sid in traces]
        with DetectionClient(host, port, namespace="n") as client:
            matrix = np.zeros((len(stale), 16))
            client._send_hot(FrameType.INGEST_HOT, stale, matrix)
            with pytest.raises(ServerError, match="handle"):
                client._check(client._read_reply())
            # Re-registering on the new connection heals the client.
            assert keyed(client.ingest_many(traces))

    def test_duplicate_handles_in_one_frame_rejected(self, loopback):
        """Duplicate rows for one handle are a malformed (fatal) frame.

        Unlike an unknown handle — a recoverable state mismatch — this
        can only be a client-side encoding bug, so it is treated like
        any other protocol violation: error out and drop the peer.
        """
        _, host, port = loopback()
        with DetectionClient(host, port, namespace="n") as client:
            (handle,) = client._ensure_handles(["x"])
            client._send_hot(
                FrameType.INGEST_HOT, [handle, handle], np.zeros((2, 8))
            )
            with pytest.raises((ServerError, ConnectionError)):
                client._check(client._read_reply())
                client._read_reply()  # server tears the connection down

    def test_magnitude_mode_hot_path_equivalence(self, loopback):
        """Hot frames also carry magnitude-mode fleets faithfully."""
        from repro.core.detector import DetectorConfig
        from repro.service.pool import PoolConfig

        config = PoolConfig(
            mode="magnitude",
            detector_config=DetectorConfig(window_size=64, evaluation_interval=4),
        )
        _, host, port = loopback(config)
        traces = magnitude_traces(5, samples=192)
        with DetectionClient(host, port, namespace="m") as v3, \
                DetectionClient(host, port, namespace="m2", max_protocol=2) as v2:
            assert keyed(v3.ingest_many(traces)) == keyed(v2.ingest_many(traces))
