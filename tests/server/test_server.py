"""Behavioural tests of the asyncio detection server over loopback TCP.

The acceptance criterion of the server PR: a loopback client pushing N
synthetic periodic streams through the daemon receives the same
``PeriodStartEvent`` sequence, stream for stream, as a direct
``DetectorPool.ingest_many`` over the same traces.
"""

import asyncio

import numpy as np
import pytest

from repro.server.client import (
    AsyncDetectionClient,
    ConnectionClosedError,
    DetectionClient,
    ServerBusy,
    ServerError,
)
from repro.server.server import ServerConfig, ServerThread, build_pool
from repro.service.pool import DetectorPool, PoolConfig
from repro.service.sharding import ShardedDetectorPool

from _server_helpers import event_config, event_traces, magnitude_traces


def keyed(events, strip=""):
    """Stream-for-stream comparable view: per-stream event sequences.

    Chunked remote ingestion interleaves events of different streams
    differently than one big direct batch; the equivalence that matters
    (and that the acceptance criterion names) is that *each stream's*
    event sequence is identical.
    """
    per_stream: dict[str, list] = {}
    for e in events:
        per_stream.setdefault(e.stream_id.removeprefix(strip), []).append(
            (e.index, e.period, e.new_detection)
        )
    return per_stream


class TestEquivalence:
    def test_chunked_ingest_matches_direct_pool(self, loopback):
        _, host, port = loopback(event_config())
        traces = event_traces(8, samples=160)
        with DetectionClient(host, port, namespace="n") as client:
            remote = []
            for offset in range(0, 160, 40):
                remote.extend(client.ingest_many(
                    {sid: values[offset : offset + 40] for sid, values in traces.items()}
                ))
            remote_periods = client.stats(periods=True)["periods"]

        pool = DetectorPool(event_config())
        direct = pool.ingest_many({f"n/{sid}": v for sid, v in traces.items()})
        assert keyed(remote) == keyed(direct, strip="n/")
        for sid in traces:
            assert remote_periods[sid] == pool.current_period(f"n/{sid}")

    def test_lockstep_matches_direct_pool(self, loopback):
        _, host, port = loopback(event_config())
        traces = event_traces(6, samples=128)
        with DetectionClient(host, port, namespace="n") as client:
            remote = client.ingest_lockstep(traces)
        direct = DetectorPool(event_config()).ingest_lockstep(
            {f"n/{sid}": v for sid, v in traces.items()}
        )
        assert keyed(remote) == keyed(direct, strip="n/")

    def test_magnitude_mode_roundtrip(self, loopback):
        from repro.core.detector import DetectorConfig

        config = PoolConfig(
            mode="magnitude",
            detector_config=DetectorConfig(window_size=64, evaluation_interval=4),
        )
        _, host, port = loopback(config)
        traces = magnitude_traces(5, samples=192)
        with DetectionClient(host, port, namespace="m") as client:
            remote = client.ingest_many(traces)
        direct = DetectorPool(config).ingest_many(
            {f"m/{sid}": v for sid, v in traces.items()}
        )
        assert keyed(remote) == keyed(direct, strip="m/")

    def test_sharded_pool_behind_server(self):
        traces = event_traces(6, samples=128)
        pool = build_pool(event_config(), workers=2)
        assert isinstance(pool, ShardedDetectorPool)
        with ServerThread(pool) as (host, port):
            with DetectionClient(host, port, namespace="s") as client:
                remote = client.ingest_many(traces)
        direct = DetectorPool(event_config()).ingest_many(
            {f"s/{sid}": v for sid, v in traces.items()}
        )
        assert keyed(remote) == keyed(direct, strip="s/")

    def test_pipelined_sharded_pool_behind_server(self):
        # With pipeline_depth set, a reply may omit still-in-flight
        # events; a subscription plus the dispatcher's idle flush must
        # still deliver every event, and the locked periods must match
        # the direct pool exactly.
        traces = event_traces(8, samples=160)
        pool = build_pool(event_config(), workers=2, pipeline_depth=4)
        assert pool.sharding.pipeline_depth == 4
        seen = []
        with ServerThread(pool) as (host, port):
            with DetectionClient(host, port, namespace="p") as client:
                client.subscribe("own")
                chunks = (
                    {sid: v[offset : offset + 40] for sid, v in traces.items()}
                    for offset in range(0, 160, 40)
                )
                client.pipeline(chunks, window=4)
                remote_periods = client.stats(periods=True)["periods"]
                while True:
                    batch = client.next_events(timeout=2.0)
                    if batch is None:
                        break
                    seen.extend(batch)
        direct_pool = DetectorPool(event_config())
        direct = []
        for offset in range(0, 160, 40):
            direct.extend(direct_pool.ingest_many(
                {f"p/{sid}": v[offset : offset + 40] for sid, v in traces.items()}
            ))
        assert keyed(seen) == keyed(direct, strip="p/")
        for sid in traces:
            assert remote_periods[sid] == direct_pool.current_period(f"p/{sid}")


class TestNamespacing:
    def test_same_stream_name_does_not_collide(self, loopback):
        _, host, port = loopback(event_config())
        trace_a = np.tile(np.arange(3), 40)  # period 3
        trace_b = np.tile(np.arange(5), 24)  # period 5
        with DetectionClient(host, port, namespace="a") as ca, \
                DetectionClient(host, port, namespace="b") as cb:
            ca.ingest("app", trace_a)
            cb.ingest("app", trace_b)
            assert ca.stats(periods=True)["periods"] == {"app": 3}
            assert cb.stats(periods=True)["periods"] == {"app": 5}

    def test_server_assigns_unique_namespaces(self, loopback):
        _, host, port = loopback(event_config())
        with DetectionClient(host, port) as c1, DetectionClient(host, port) as c2:
            assert c1.namespace != c2.namespace

    def test_bad_namespace_rejected(self, loopback):
        _, host, port = loopback(event_config())
        with pytest.raises((ServerError, ConnectionError)):
            DetectionClient(host, port, namespace="a/b")


class TestSubscriptions:
    def test_own_scope_strips_namespace_and_filters(self, loopback):
        _, host, port = loopback(event_config())
        trace = np.tile(np.arange(4), 30)
        with DetectionClient(host, port, namespace="w") as watcher, \
                DetectionClient(host, port, namespace="o") as other:
            watcher.subscribe("own")
            other.ingest("noise", trace)  # not watcher's namespace
            events = watcher.ingest("app", trace)
            pushed = watcher.next_events(timeout=5)
            assert pushed is not None
            assert {e.stream_id for e in pushed} == {"app"}
            assert keyed(pushed) == keyed(events)
            # Nothing else pending: the other client's events were filtered.
            assert watcher.next_events(timeout=0.2) is None

    def test_all_scope_sees_other_namespaces(self, loopback):
        _, host, port = loopback(event_config())
        trace = np.tile(np.arange(4), 30)
        with DetectionClient(host, port, namespace="w") as watcher, \
                DetectionClient(host, port, namespace="o") as other:
            watcher.subscribe("all")
            other.ingest("app", trace)
            pushed = watcher.next_events(timeout=5)
            assert pushed is not None
            assert {e.stream_id for e in pushed} == {"o/app"}

    def test_bad_scope_rejected(self, loopback):
        _, host, port = loopback(event_config())
        with DetectionClient(host, port) as client:
            with pytest.raises(ServerError):
                client.subscribe("everything")


class TestBackpressure:
    def test_busy_reply_when_pipelining_past_inflight_bound(self, loopback):
        _, host, port = loopback(
            event_config(), ServerConfig(max_inflight=1)
        )
        trace = np.tile(np.arange(4), 50)
        with DetectionClient(host, port, namespace="p") as client:
            chunks = [{"x": trace[i * 20 : (i + 1) * 20]} for i in range(10)]
            client.pipeline(chunks, window=6, on_busy="count")
            assert client.busy_replies > 0
            assert client.stats()["server"]["busy_replies"] > 0

    def test_busy_raises_by_default(self, loopback):
        _, host, port = loopback(
            event_config(), ServerConfig(max_inflight=1)
        )
        trace = np.tile(np.arange(4), 50)
        with DetectionClient(host, port, namespace="p") as client:
            chunks = [{"x": trace[i * 20 : (i + 1) * 20]} for i in range(10)]
            with pytest.raises(ServerBusy):
                client.pipeline(chunks, window=8)
            # The raise happened only after every outstanding reply was
            # drained: the request/reply FIFO is still paired and the
            # connection remains fully usable.
            stats = client.stats(periods=True)
            assert "pool" in stats and "x" in stats["periods"]
            client.ingest("x", trace[:20])

    def test_within_bound_pipelining_loses_nothing(self, loopback):
        _, host, port = loopback(event_config())
        traces = event_traces(4, samples=160)
        with DetectionClient(host, port, namespace="n") as client:
            chunks = [
                {sid: values[offset : offset + 20] for sid, values in traces.items()}
                for offset in range(0, 160, 20)
            ]
            remote = client.pipeline(chunks, window=4)
        direct = DetectorPool(event_config()).ingest_many(
            {f"n/{sid}": v for sid, v in traces.items()}
        )
        assert keyed(remote) == keyed(direct, strip="n/")


class TestProtocolAbuse:
    def test_request_before_hello_is_rejected(self, loopback):
        import socket

        from repro.server import protocol
        from repro.server.protocol import FrameType

        _, host, port = loopback(event_config())
        with socket.create_connection((host, port), timeout=10) as sock:
            protocol.write_frame(sock, FrameType.STATS, {})
            frame = protocol.read_frame(sock)
            assert frame.type == FrameType.ERROR
            assert "HELLO" in frame.meta["message"]

    def test_ingest_with_mismatched_arrays_is_an_error(self, loopback):
        import socket

        from repro.server import protocol
        from repro.server.protocol import FrameType

        _, host, port = loopback(event_config())
        with socket.create_connection((host, port), timeout=10) as sock:
            protocol.write_frame(sock, FrameType.HELLO, {"namespace": "x"})
            assert protocol.read_frame(sock).type == FrameType.OK
            protocol.write_frame(
                sock, FrameType.INGEST, {"streams": ["a", "b"]}, [np.arange(4.0)]
            )
            frame = protocol.read_frame(sock)
            assert frame.type == FrameType.ERROR


class TestShutdown:
    def test_graceful_stop_drains_and_says_bye(self):
        thread = ServerThread(DetectorPool(event_config()))
        host, port = thread.start()
        client = DetectionClient(host, port, namespace="d")
        client.ingest("app", np.tile(np.arange(4), 30))
        thread.stop()
        # The connected client observes the drain, not a hard cut.
        with pytest.raises(ConnectionClosedError):
            while True:
                client.next_events(timeout=1)
        with pytest.raises(ConnectionClosedError):
            client.ingest("app", [1, 2, 3])
        client.close()

    def test_stop_is_idempotent(self):
        thread = ServerThread(DetectorPool(event_config()))
        thread.start()
        thread.stop()
        thread.stop()

    def test_new_connections_refused_after_stop(self):
        thread = ServerThread(DetectorPool(event_config()))
        host, port = thread.start()
        thread.stop()
        with pytest.raises(ConnectionError):
            DetectionClient(host, port)


class TestAsyncClient:
    def test_async_roundtrip_and_subscription(self, loopback):
        _, host, port = loopback(event_config())
        traces = event_traces(4, samples=120)

        async def run():
            client = await AsyncDetectionClient.connect(host, port, namespace="a")
            await client.subscribe("own")
            events = await client.ingest_many(traces)
            pushed = await asyncio.wait_for(client.events.get(), 10)
            stats = await client.stats(periods=True)
            await client.close()
            return events, pushed, stats

        events, pushed, stats = asyncio.run(run())
        direct = DetectorPool(event_config()).ingest_many(
            {f"a/{sid}": v for sid, v in traces.items()}
        )
        assert keyed(events) == keyed(direct, strip="a/")
        assert keyed(pushed) == keyed(events)
        assert stats["periods"] == {
            sid: 3 + i % 7 for i, sid in enumerate(traces)
        }

    def test_async_snapshot_restore(self, loopback):
        _, host, port = loopback(event_config())
        trace = np.tile(np.arange(6), 30)

        async def run():
            client = await AsyncDetectionClient.connect(host, port, namespace="s")
            await client.ingest("app", trace[:90])
            snap = await client.snapshot()
            await client.close()
            client = await AsyncDetectionClient.connect(
                host, port, namespace="s", fresh=True
            )
            restored = await client.restore(snap)
            tail = await client.ingest("app", trace[90:])
            await client.close()
            return restored, tail

        restored, tail = asyncio.run(run())
        pool = DetectorPool(event_config())
        pool.ingest("app", trace[:90])
        expected = pool.ingest("app", trace[90:])
        assert restored == 1
        assert keyed(tail) == keyed(expected)


class TestHandshakeFailures:
    def test_failed_handshake_closes_the_socket(self, loopback):
        import gc
        import warnings

        _, host, port = loopback(event_config())
        with warnings.catch_warnings():
            warnings.simplefilter("error", ResourceWarning)
            with pytest.raises((ServerError, ConnectionError)):
                DetectionClient(host, port, namespace="bad/name")
            gc.collect()  # an unclosed socket would raise ResourceWarning here
