"""Shared fixtures of the network-server suite: loopback server factories."""

from __future__ import annotations

import pytest

from _server_helpers import event_config
from repro.server.server import ServerConfig, ServerThread
from repro.service.pool import DetectorPool, PoolConfig


@pytest.fixture
def loopback():
    """Factory: start a loopback server; all started servers stop at teardown."""
    threads: list[ServerThread] = []

    def start(pool_config: PoolConfig | None = None, server_config: ServerConfig | None = None):
        thread = ServerThread(DetectorPool(pool_config or event_config()), server_config)
        threads.append(thread)
        host, port = thread.start()
        return thread, host, port

    yield start
    for thread in threads:
        thread.stop()
