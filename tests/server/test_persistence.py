"""Durable server state: CheckpointStore semantics + in-process warm restarts.

The store-level tests exercise the on-disk contract directly (atomic
segments, delta ordering, compaction, corruption skipping, version
gates); the warm-restart tests run a real loopback server with a
``state_dir`` and assert the zero-stream-loss contract — a restarted
server hands a resuming subscriber the exact per-stream seq tail an
uninterrupted run would have.  Kill -9 process-level recovery lives in
``test_crash_recovery.py``.
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from _server_helpers import event_config, event_traces
from repro.server import persistence
from repro.server.client import DetectionClient
from repro.server.persistence import (
    CheckpointStore,
    CheckpointVersionError,
    STORE_FORMAT,
)
from repro.server.server import ServerConfig, ServerThread, build_pool
from repro.service.events import PeriodStartEvent
from repro.util.validation import ValidationError


def _stream_entry(seed: int) -> dict:
    """A snapshot-shaped stream entry (the store doesn't interpret it)."""
    return {
        "state": {
            "values": np.arange(8, dtype=np.float64) * seed,
            "nested": {"counter": seed, "ids": np.arange(seed + 1, dtype=np.int64)},
        },
        "samples": 10 * seed,
        "events": seed,
    }


def _event(sid: str, seq: int) -> PeriodStartEvent:
    return PeriodStartEvent(
        stream_id=sid, index=seq * 3, period=3, confidence=0.9,
        new_detection=seq == 0, seq=seq,
    )


def _assert_entry_equal(actual: dict, expected: dict) -> None:
    assert actual["samples"] == expected["samples"]
    assert actual["events"] == expected["events"]
    np.testing.assert_array_equal(
        actual["state"]["values"], expected["state"]["values"]
    )
    np.testing.assert_array_equal(
        actual["state"]["nested"]["ids"], expected["state"]["nested"]["ids"]
    )


class TestCheckpointStore:
    def test_round_trip(self, tmp_path):
        store = CheckpointStore(tmp_path)
        journal = ([_event("ns/app", 0), _event("ns/app", 1)], {"ns/app": 1})
        store.write_delta({"ns/app": _stream_entry(3)}, journals={"ns": journal})

        result = CheckpointStore(tmp_path).load()
        assert result.segments_loaded == 1
        assert result.segments_skipped == 0
        _assert_entry_equal(result.streams["ns/app"], _stream_entry(3))
        entries, last_seq = result.journals["ns"]
        assert [e.seq for e in entries] == [0, 1]
        assert entries[0].stream_id == "ns/app"
        assert entries[0].period == 3
        assert last_seq == {"ns/app": 1}

    def test_later_deltas_override_and_remove(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.write_delta({"ns/a": _stream_entry(1), "ns/b": _stream_entry(2)})
        store.write_delta({"ns/a": _stream_entry(5)}, removed=["ns/b"])

        result = CheckpointStore(tmp_path).load()
        assert set(result.streams) == {"ns/a"}
        _assert_entry_equal(result.streams["ns/a"], _stream_entry(5))

    def test_journal_removal_record(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.write_delta({}, journals={"ns": ([_event("ns/a", 0)], {"ns/a": 0})})
        store.write_delta({}, journals_removed=["ns"])
        assert CheckpointStore(tmp_path).load().journals == {}

    def test_compaction_folds_deltas(self, tmp_path):
        store = CheckpointStore(tmp_path, compact_after=3)
        for seed in range(1, 4):
            store.write_delta({f"ns/s{seed}": _stream_entry(seed)})
        # Hitting compact_after folded everything into one base segment.
        assert len(store.segments) == 1
        assert store.compactions == 1

        result = CheckpointStore(tmp_path).load()
        assert set(result.streams) == {"ns/s1", "ns/s2", "ns/s3"}
        _assert_entry_equal(result.streams["ns/s2"], _stream_entry(2))

    def test_truncated_segment_skipped_with_warning(self, tmp_path, caplog):
        store = CheckpointStore(tmp_path)
        store.write_delta({"ns/a": _stream_entry(1)})
        store.write_delta({"ns/b": _stream_entry(2)})
        name = store.segments[-1]
        path = tmp_path / "segments" / name
        path.write_bytes(path.read_bytes()[:-20])  # tear the tail off

        with caplog.at_level("WARNING"):
            result = CheckpointStore(tmp_path).load()
        assert result.segments_skipped == 1
        assert set(result.streams) == {"ns/a"}  # the intact delta survives
        assert any("skipping unreadable" in r.message for r in caplog.records)

    def test_bit_flip_fails_crc_and_skips(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.write_delta({"ns/a": _stream_entry(1)})
        path = tmp_path / "segments" / store.segments[0]
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        path.write_bytes(bytes(raw))

        result = CheckpointStore(tmp_path).load()
        assert result.segments_skipped == 1
        assert result.streams == {}

    def test_newer_store_format_rejected(self, tmp_path, monkeypatch):
        store = CheckpointStore(tmp_path)
        monkeypatch.setattr(persistence, "STORE_FORMAT", STORE_FORMAT + 1)
        store.write_delta({"ns/a": _stream_entry(1)})
        monkeypatch.undo()

        with pytest.raises(CheckpointVersionError, match="newer"):
            CheckpointStore(tmp_path).load()

    def test_newer_snapshot_version_rejected(self, tmp_path, monkeypatch):
        store = CheckpointStore(tmp_path)
        monkeypatch.setattr(
            persistence, "SNAPSHOT_VERSION", persistence.SNAPSHOT_VERSION + 1
        )
        store.write_delta({"ns/a": _stream_entry(1)})
        monkeypatch.undo()

        with pytest.raises(CheckpointVersionError, match="snapshot"):
            CheckpointStore(tmp_path).load()

    def test_corrupt_manifest_degrades_to_empty(self, tmp_path, caplog):
        store = CheckpointStore(tmp_path)
        store.write_delta({"ns/a": _stream_entry(1)})
        (tmp_path / "MANIFEST.json").write_text("{not json")

        with caplog.at_level("WARNING"):
            result = CheckpointStore(tmp_path).load()
        assert result.streams == {}
        assert any("manifest" in r.message for r in caplog.records)

    def test_unreferenced_segments_collected(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.write_delta({"ns/a": _stream_entry(1)})
        orphan = tmp_path / "segments" / "999999999.ckpt"
        orphan.write_bytes(b"leftover from an interrupted write")
        stray_tmp = tmp_path / "segments" / "000000042.ckpt.tmp"
        stray_tmp.write_bytes(b"half a segment")

        store.write_delta({"ns/b": _stream_entry(2)})
        assert not orphan.exists()
        assert not stray_tmp.exists()
        assert CheckpointStore(tmp_path).load().segments_loaded == 2

    def test_manifest_survives_partial_segment_write(self, tmp_path):
        # A tmp file next to live segments (the moment before os.replace)
        # must never be picked up by load — only manifest-listed names.
        store = CheckpointStore(tmp_path)
        store.write_delta({"ns/a": _stream_entry(1)})
        (tmp_path / "segments" / "000000002.ckpt.tmp").write_bytes(b"torn")
        result = CheckpointStore(tmp_path).load()
        assert result.segments_loaded == 1
        assert result.segments_skipped == 0

    def test_compact_after_validation(self, tmp_path):
        with pytest.raises(Exception, match="compact_after"):
            CheckpointStore(tmp_path, compact_after=1)


class TestServerConfigValidation:
    def test_interval_must_be_positive(self):
        with pytest.raises(ValidationError, match="checkpoint_interval"):
            ServerConfig(state_dir="x", checkpoint_interval=0)

    def test_max_dirty_must_be_positive(self):
        with pytest.raises(ValidationError, match="checkpoint_max_dirty"):
            ServerConfig(state_dir="x", checkpoint_max_dirty=0)


def _durable_config(tmp_path, **overrides) -> ServerConfig:
    options = dict(state_dir=str(tmp_path / "state"), checkpoint_interval=60.0)
    options.update(overrides)
    return ServerConfig(**options)


class TestWarmRestart:
    def test_restart_resumes_exact_seqs(self, tmp_path, loopback):
        thread, host, port = loopback(server_config=_durable_config(tmp_path))
        traces = event_traces(3, samples=150)
        live: dict[str, list[PeriodStartEvent]] = {sid: [] for sid in traces}
        with DetectionClient(host, port, namespace="ns") as client:
            for sid, trace in traces.items():
                live[sid].extend(client.ingest(sid, trace))
        thread.checkpoint()
        thread.stop()

        thread2, host, port = loopback(server_config=_durable_config(tmp_path))
        assert thread2.server.restore_stats["streams"] == 3
        with DetectionClient(host, port, namespace="ns") as client:
            for sid, events in live.items():
                replayed, gap = client.replay(sid, 0)
                assert gap is None
                assert [e.seq for e in replayed] == [e.seq for e in events]
                assert [e.index for e in replayed] == [e.index for e in events]
                # New events continue the stream's numbering seamlessly.
                more = client.ingest(sid, traces[sid][:30])
                if events and more:
                    assert more[0].seq == events[-1].seq + 1

    def test_graceful_stop_takes_final_checkpoint(self, tmp_path, loopback):
        thread, host, port = loopback(server_config=_durable_config(tmp_path))
        with DetectionClient(host, port, namespace="ns") as client:
            events = client.ingest("app", [7, 8, 9] * 40)
        assert events
        thread.stop()  # no explicit checkpoint: the drain must persist

        thread2, host, port = loopback(server_config=_durable_config(tmp_path))
        with DetectionClient(host, port, namespace="ns") as client:
            replayed, gap = client.replay("app", 0)
        assert gap is None
        assert [e.seq for e in replayed] == [e.seq for e in events]

    def test_resync_after_restart_reports_no_gap(self, tmp_path, loopback):
        thread, host, port = loopback(server_config=_durable_config(tmp_path))
        with DetectionClient(host, port, namespace="ns") as client:
            live = client.ingest("app", [7, 8, 9] * 40)
        thread.stop()

        thread2, host, port = loopback(server_config=_durable_config(tmp_path))
        gaps: list = []
        with DetectionClient(
            host, port, namespace="ns", on_gap=lambda *a: gaps.append(a)
        ) as client:
            client.subscribe()
            recovered = client.resync(["app"])
        assert gaps == []
        assert [e.seq for e in recovered] == [e.seq for e in live]

    def test_sharded_pool_warm_restart(self, tmp_path):
        config = _durable_config(tmp_path)
        threads = []
        try:
            thread = ServerThread(build_pool(event_config(), workers=2), config)
            threads.append(thread)
            host, port = thread.start()
            traces = event_traces(6, samples=120)
            live: dict[str, list[PeriodStartEvent]] = {sid: [] for sid in traces}
            with DetectionClient(host, port, namespace="ns") as client:
                for sid, trace in traces.items():
                    live[sid].extend(client.ingest(sid, trace))
            thread.stop()

            thread2 = ServerThread(
                build_pool(event_config(), workers=2), _durable_config(tmp_path)
            )
            threads.append(thread2)
            host, port = thread2.start()
            assert thread2.server.restore_stats["streams"] == 6
            with DetectionClient(host, port, namespace="ns") as client:
                for sid, events in live.items():
                    replayed, gap = client.replay(sid, 0)
                    assert gap is None
                    assert [e.seq for e in replayed] == [e.seq for e in events]
        finally:
            for thread in threads:
                thread.stop()

    def test_incremental_pass_skips_clean_streams(self, tmp_path, loopback):
        thread, host, port = loopback(server_config=_durable_config(tmp_path))
        with DetectionClient(host, port, namespace="ns") as client:
            client.ingest("a", [7, 8, 9] * 20)
            client.ingest("b", [7, 8, 9] * 20)
            first = thread.checkpoint()
            assert first["streams"] == 2
            second = thread.checkpoint()
            assert second["idle"] is True
            client.ingest("a", [7, 8, 9] * 4)
            third = thread.checkpoint()
            assert third["streams"] == 1  # only the dirty stream rewrites

    def test_max_dirty_triggers_early_pass(self, tmp_path, loopback):
        thread, host, port = loopback(
            server_config=_durable_config(
                tmp_path, checkpoint_interval=3600.0, checkpoint_max_dirty=1
            )
        )
        with DetectionClient(host, port, namespace="ns") as client:
            client.ingest("app", [7, 8, 9] * 20)
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                ckpt = client.stats()["server"]["checkpoint"]
                if ckpt["passes"] >= 1:
                    break
                time.sleep(0.05)
            else:
                pytest.fail("max_dirty never kicked a checkpoint pass")

    def test_fresh_handshake_removal_is_durable(self, tmp_path, loopback):
        thread, host, port = loopback(server_config=_durable_config(tmp_path))
        with DetectionClient(host, port, namespace="ns") as client:
            client.ingest("app", [7, 8, 9] * 40)
        thread.checkpoint()
        with DetectionClient(host, port, namespace="ns", fresh=True) as client:
            pass  # fresh handshake wipes the namespace's streams + journal
        thread.stop()

        thread2, host, port = loopback(server_config=_durable_config(tmp_path))
        assert thread2.server.restore_stats["streams"] == 0
        with DetectionClient(host, port, namespace="ns") as client:
            events = client.ingest("app", [7, 8, 9] * 40)
        assert events[0].seq == 0  # numbering restarted, no stale journal

    def test_version_gated_store_blocks_startup(self, tmp_path, monkeypatch):
        state = tmp_path / "state"
        store = CheckpointStore(state)
        monkeypatch.setattr(
            persistence, "SNAPSHOT_VERSION", persistence.SNAPSHOT_VERSION + 1
        )
        store.write_delta({"ns/app": _stream_entry(1)})
        monkeypatch.undo()

        from repro.service.pool import DetectorPool

        thread = ServerThread(
            DetectorPool(event_config()),
            ServerConfig(state_dir=str(state), checkpoint_interval=60.0),
        )
        with pytest.raises(CheckpointVersionError):
            thread.start()

    def test_corrupt_segment_skipped_at_startup(self, tmp_path, loopback):
        thread, host, port = loopback(server_config=_durable_config(tmp_path))
        with DetectionClient(host, port, namespace="ns") as client:
            client.ingest("app", [7, 8, 9] * 40)
        thread.stop()

        state = tmp_path / "state"
        manifest = json.loads((state / "MANIFEST.json").read_text())
        segment = state / "segments" / manifest["segments"][-1]
        segment.write_bytes(segment.read_bytes()[: len(segment.read_bytes()) // 2])

        thread2, host, port = loopback(server_config=_durable_config(tmp_path))
        stats = thread2.server.restore_stats
        assert stats["segments_skipped"] >= 1  # degraded, not crashed

    def test_checkpoint_now_requires_state_dir(self, loopback):
        thread, host, port = loopback()
        with pytest.raises(ValidationError, match="state_dir"):
            thread.checkpoint()

    def test_stats_expose_checkpoint_counters(self, tmp_path, loopback):
        thread, host, port = loopback(server_config=_durable_config(tmp_path))
        with DetectionClient(host, port, namespace="ns") as client:
            client.ingest("app", [7, 8, 9] * 20)
            thread.checkpoint()
            stats = client.stats()["server"]
        ckpt = stats["checkpoint"]
        assert ckpt["passes"] == 1
        assert ckpt["streams_written"] == 1
        assert ckpt["bytes_written"] > 0
        assert ckpt["segments"] >= 1
        assert stats["restore"]["streams"] == 0  # first boot: empty store
