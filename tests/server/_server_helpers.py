"""Shared workload builders of the network-server suite."""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.service.pool import PoolConfig
from repro.traces.synthetic import periodic_signal, repeat_pattern

#: Committed localhost test certificate (see certs/README.md); clients
#: verify by pinning the certificate itself as the CA.
TLS_CERT = str(Path(__file__).resolve().parent / "certs" / "server.pem")
TLS_KEY = str(Path(__file__).resolve().parent / "certs" / "server.key")


def event_config(**overrides) -> PoolConfig:
    options = dict(mode="event", window_size=32)
    options.update(overrides)
    return PoolConfig(**options)


def event_traces(streams: int, samples: int = 160) -> dict[str, np.ndarray]:
    """Synthetic identifier streams with known periods 3 + i % 7."""
    return {
        f"app-{i}": repeat_pattern(100 * (i + 1) + np.arange(3 + i % 7), samples)
        for i in range(streams)
    }


def magnitude_traces(streams: int, samples: int = 256) -> dict[str, np.ndarray]:
    return {
        f"sig-{i}": periodic_signal(3 + i % 11, samples, seed=i)
        for i in range(streams)
    }
