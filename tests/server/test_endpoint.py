"""Endpoint URL grammar, deprecated-signature shims, and TLS transport.

The TLS tests run a real loopback server with the committed localhost
certificate (``certs/``) and pin it as the client CA; the reconnect
regression kills a TLS+auth server mid-retry-loop and asserts the
retries re-present the token and rebuild the TLS context, resuming
seq-exact.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from _server_helpers import (
    TLS_CERT,
    TLS_KEY,
    event_config,
    event_traces,
    magnitude_traces,
)
from repro.server import connect, connect_async
from repro.server.client import (
    AsyncDetectionClient,
    DetectionClient,
    ServerError,
)
from repro.server.endpoint import DEFAULT_TIMEOUT, Endpoint, resolve_endpoint
from repro.server.protocol import ProtocolError
from repro.server.server import ServerConfig
from repro.service.events import PeriodStartEvent
from repro.util.validation import ValidationError


class TestEndpointParse:
    def test_plain_url(self):
        ep = Endpoint.parse("repro://10.0.0.5:9000")
        assert (ep.host, ep.port, ep.tls) == ("10.0.0.5", 9000, False)
        assert ep.token is None
        assert ep.timeout == DEFAULT_TIMEOUT

    def test_tls_url_with_token_and_params(self):
        ep = Endpoint.parse(
            "repros://s3cret%40x@example.org:8757?ca=/tmp/ca.pem&insecure=1&timeout=5"
        )
        assert ep.tls
        assert ep.token == "s3cret@x"  # userinfo is percent-decoded
        assert ep.tls_ca == "/tmp/ca.pem"
        assert ep.tls_insecure
        assert ep.timeout == 5.0

    def test_bare_host_port(self):
        ep = Endpoint.parse("127.0.0.1:8757")
        assert (ep.host, ep.port, ep.tls, ep.token) == ("127.0.0.1", 8757, False, None)

    def test_parse_overrides(self):
        ep = Endpoint.parse("repros://h:1", token="t", tls_ca="ca.pem")
        assert ep.token == "t" and ep.tls_ca == "ca.pem"

    @pytest.mark.parametrize(
        "bad",
        [
            "http://h:1",  # wrong scheme
            "repro://:1",  # no host
            "repro://h",  # no port
            "justahost",  # neither URL nor HOST:PORT
            "h:notaport",
            "repro://h:1?timeout=soon",
            "",
        ],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValidationError):
            Endpoint.parse(bad)

    def test_str_redacts_token(self):
        ep = Endpoint.parse("repros://secret@h:1")
        assert "secret" not in str(ep)
        assert str(ep) == "repros://h:1"

    def test_validation(self):
        with pytest.raises(ValidationError):
            Endpoint(host="")
        with pytest.raises(ValidationError):
            Endpoint(port=70000)
        with pytest.raises(ValidationError):
            Endpoint(timeout=0)


class TestResolveEndpoint:
    def test_endpoint_passthrough(self):
        ep = Endpoint(host="h", port=1)
        assert resolve_endpoint(ep) is ep

    def test_endpoint_plus_port_is_an_error(self):
        with pytest.raises(TypeError):
            resolve_endpoint(Endpoint(), 8757)

    def test_host_port_pair_warns(self):
        with pytest.warns(DeprecationWarning, match="deprecated"):
            ep = resolve_endpoint("localhost", 8757)
        assert (ep.host, ep.port, ep.tls) == ("localhost", 8757, False)

    def test_url_string(self):
        ep = resolve_endpoint("repros://h:2", token="t", timeout=None)
        assert ep.tls and ep.token == "t" and ep.timeout is None

    def test_rejects_non_endpoint(self):
        with pytest.raises(TypeError):
            resolve_endpoint(42)


class TestTLSTransport:
    def _tls_config(self, **overrides) -> ServerConfig:
        options = dict(tls_cert=TLS_CERT, tls_key=TLS_KEY)
        options.update(overrides)
        return ServerConfig(**options)

    def test_tls_roundtrip_blocking(self, loopback):
        thread, host, port = loopback(server_config=self._tls_config())
        url = f"repros://{host}:{port}?ca={TLS_CERT}"
        with connect(url, namespace="ns") as client:
            events = client.ingest("app", [7, 8, 9] * 40)
        assert events and all(isinstance(e, PeriodStartEvent) for e in events)

    def test_tls_roundtrip_async(self, loopback):
        thread, host, port = loopback(server_config=self._tls_config())
        endpoint = Endpoint(host=host, port=port, tls=True, tls_ca=TLS_CERT)

        async def run():
            client = await connect_async(endpoint, namespace="ns")
            try:
                return await client.ingest("app", [1, 2, 3] * 40)
            finally:
                await client.close()

        assert asyncio.run(run())

    def test_tls_large_lockstep_frame(self, loopback):
        """A hot frame past the scatter-gather threshold survives TLS.

        ``ssl.SSLSocket`` has no usable ``sendmsg``; frames above the
        coalescing threshold must fall back to one joined ``sendall``.
        """
        thread, host, port = loopback(server_config=self._tls_config())
        traces = magnitude_traces(120, samples=256)  # ~240 KiB matrix
        with connect(f"repros://{host}:{port}?ca={TLS_CERT}", namespace="ns") as client:
            client.ingest_lockstep(traces)
            assert client.stats()["pool"]["streams"] == len(traces)

    def test_plaintext_client_refused_by_tls_server(self, loopback):
        thread, host, port = loopback(server_config=self._tls_config())
        with pytest.raises((OSError, ProtocolError, ServerError)):
            DetectionClient(Endpoint(host=host, port=port, timeout=5.0))

    def test_tls_client_refused_by_plaintext_server(self, loopback):
        thread, host, port = loopback()
        with pytest.raises(OSError):
            DetectionClient(
                Endpoint(host=host, port=port, tls=True, tls_ca=TLS_CERT, timeout=5.0)
            )

    def test_untrusted_certificate_rejected_unless_insecure(self, loopback):
        thread, host, port = loopback(server_config=self._tls_config())
        # No CA pin: the self-signed cert fails system-store verification.
        with pytest.raises(OSError):
            DetectionClient(Endpoint(host=host, port=port, tls=True, timeout=5.0))
        with DetectionClient(
            Endpoint(host=host, port=port, tls=True, tls_insecure=True)
        ) as client:
            assert client.ingest("app", [1, 2, 3] * 30) is not None


class TestTLSReconnect:
    def test_retries_resend_token_and_rebuild_tls_context(self, tmp_path, loopback):
        """Kill/restart a TLS+auth server under a retrying connect.

        Every retry attempt must rebuild the TLS context and re-present
        the token — the first attempts fail against the dead port, the
        winning one lands on the respawned server — and the resumed
        session must continue seq numbering exactly.
        """
        state = str(tmp_path / "state")
        config = dict(
            tls_cert=TLS_CERT,
            tls_key=TLS_KEY,
            auth_token="tok",
            state_dir=state,
            checkpoint_interval=60.0,
        )
        thread, host, port = loopback(server_config=ServerConfig(**config))
        url = f"repros://tok@{host}:{port}?ca={TLS_CERT}"
        traces = event_traces(2, samples=150)
        with connect(url, namespace="ns") as client:
            live = {sid: client.ingest(sid, trace) for sid, trace in traces.items()}
            resume = dict(client.last_seqs)
        assert any(live.values())
        thread.stop()  # graceful stop checkpoints; the port is now dead

        result: dict = {}

        def reconnect():
            try:
                result["client"] = DetectionClient(
                    url,
                    namespace="ns",
                    connect_retries=60,
                    retry_delay=0.1,
                    resume_seqs=resume,
                )
            except BaseException as exc:  # surfaced by the main thread
                result["error"] = exc

        worker = threading.Thread(target=reconnect)
        worker.start()
        # Let a few attempts fail against the closed port first.
        worker.join(timeout=0.5)
        loopback(server_config=ServerConfig(port=port, **config))
        worker.join(timeout=30.0)
        assert not worker.is_alive()
        assert "error" not in result, result.get("error")
        with result["client"] as client:
            for sid, events in live.items():
                replayed, gap = client.replay(sid, 0)
                assert gap is None
                assert [e.seq for e in replayed] == [e.seq for e in events]
                more = client.ingest(sid, traces[sid][:40])
                if events and more:
                    assert more[0].seq == events[-1].seq + 1

    def test_async_connect_retries_through_restart(self, tmp_path, loopback):
        config = dict(tls_cert=TLS_CERT, tls_key=TLS_KEY, auth_token="tok")
        thread, host, port = loopback(server_config=ServerConfig(**config))
        thread.stop()
        endpoint = Endpoint(
            host=host, port=port, tls=True, tls_ca=TLS_CERT, token="tok"
        )

        async def run():
            task = asyncio.ensure_future(
                AsyncDetectionClient.connect(
                    endpoint, namespace="ns", connect_retries=60, retry_delay=0.1
                )
            )
            await asyncio.sleep(0.4)
            assert not task.done()  # still retrying against the dead port
            await asyncio.to_thread(
                loopback, None, ServerConfig(port=port, **config)
            )
            client = await asyncio.wait_for(task, timeout=30.0)
            try:
                return await client.ingest("app", [5, 6, 7] * 30)
            finally:
                await client.close()

        assert asyncio.run(run()) is not None
