"""HELLO token authentication: server, router, v2/v3 peers, TLS.

The contract under test: a missing/unknown/expired token answers ERROR
and closes *before any pool mutation* (a rejected ``fresh`` handshake
drops nothing), the token scan is constant-time (every configured
token is compared even after a match), and a token's forced namespace
overrides the client-requested one.
"""

from __future__ import annotations

import asyncio

import pytest

import repro.server.auth as auth_module
from _server_helpers import TLS_CERT, TLS_KEY, event_config
from repro.server.auth import AuthError, TokenAuthenticator
from repro.server.client import AsyncDetectionClient, DetectionClient, ServerError
from repro.server.endpoint import Endpoint
from repro.server.router import RouterConfig, RouterThread
from repro.server.server import ServerConfig


def _client(host, port, **kwargs) -> DetectionClient:
    return DetectionClient(Endpoint(host=host, port=port), **kwargs)


class TestTokenAuthenticator:
    def test_single_token(self):
        authn = TokenAuthenticator({"tok": None})
        assert authn.authenticate("tok") is None
        with pytest.raises(AuthError, match="invalid or missing"):
            authn.authenticate("nope")
        with pytest.raises(AuthError, match="invalid or missing"):
            authn.authenticate(None)

    def test_forced_namespace(self):
        authn = TokenAuthenticator({"a": "tenant-a", "b": None})
        assert authn.authenticate("a") == "tenant-a"
        assert authn.authenticate("b") is None

    def test_expiry(self):
        authn = TokenAuthenticator({"t": None}, expires={"t": 100.0})
        assert authn.authenticate("t", now=99.0) is None
        with pytest.raises(AuthError, match="expired"):
            authn.authenticate("t", now=100.0)

    def test_constant_time_scan_compares_every_token(self, monkeypatch):
        calls = []
        real = auth_module.hmac.compare_digest

        def counting(a, b):
            calls.append(b)
            return real(a, b)

        monkeypatch.setattr(auth_module.hmac, "compare_digest", counting)
        authn = TokenAuthenticator({"aa": None, "bb": None, "cc": None})
        authn.authenticate("aa")  # matches the first configured token
        assert len(calls) == 3  # ... but every token was still compared
        calls.clear()
        with pytest.raises(AuthError):
            authn.authenticate("zz")
        assert len(calls) == 3

    def test_from_file(self, tmp_path):
        path = tmp_path / "tokens"
        path.write_text(
            "# comment\n"
            "plain\n"
            "pinned:tenant-a\n"
            "expiring:tenant-b:100.5\n"
            "\n"
        )
        authn = TokenAuthenticator.from_file(path)
        assert len(authn) == 3
        assert authn.authenticate("plain") is None
        assert authn.authenticate("pinned") == "tenant-a"
        assert authn.authenticate("expiring", now=50.0) == "tenant-b"
        with pytest.raises(AuthError, match="expired"):
            authn.authenticate("expiring", now=200.0)

    @pytest.mark.parametrize("line", ["a:b:c:d", ":ns", "tok:ns:soon"])
    def test_from_file_rejects_malformed(self, tmp_path, line):
        path = tmp_path / "tokens"
        path.write_text(line + "\n")
        with pytest.raises(ValueError, match="tokens:1"):
            TokenAuthenticator.from_file(path)

    def test_from_config(self, tmp_path):
        assert TokenAuthenticator.from_config() is None
        path = tmp_path / "tokens"
        path.write_text("filetok:tenant-f\n")
        authn = TokenAuthenticator.from_config(
            token="single", token_file=path, tokens={"mapped": "tenant-m"}
        )
        assert authn is not None and len(authn) == 3
        assert authn.authenticate("single") is None
        assert authn.authenticate("filetok") == "tenant-f"
        assert authn.authenticate("mapped") == "tenant-m"

    def test_requires_tokens(self):
        with pytest.raises(ValueError):
            TokenAuthenticator({})


class TestServerAuth:
    def test_tokenless_server_stays_open(self, loopback):
        thread, host, port = loopback()
        with _client(host, port, namespace="ns") as client:
            assert client.ingest("app", [1, 2, 3] * 30) is not None

    def test_missing_and_wrong_token_rejected(self, loopback):
        thread, host, port = loopback(
            server_config=ServerConfig(auth_token="s3cret")
        )
        with pytest.raises(ServerError, match="authentication failed"):
            _client(host, port)
        with pytest.raises(ServerError, match="authentication failed"):
            _client(host, port, token="wrong")
        with _client(host, port, token="s3cret", namespace="ns") as client:
            assert client.ingest("app", [1, 2, 3] * 30) is not None

    def test_rejected_fresh_handshake_mutates_nothing(self, loopback):
        thread, host, port = loopback(
            server_config=ServerConfig(auth_token="s3cret")
        )
        with _client(host, port, token="s3cret", namespace="ns") as client:
            live = client.ingest("app", [7, 8, 9] * 40)
        assert live
        # A rejected peer asking for the same namespace with fresh=True
        # must not drop its streams or journal.
        with pytest.raises(ServerError):
            _client(host, port, token="wrong", namespace="ns", fresh=True)
        with _client(host, port, token="s3cret", namespace="ns") as client:
            stats = client.stats()
            assert stats["pool"]["streams"] == 1
            replayed, gap = client.replay("app", 0)
            assert gap is None
            assert [e.seq for e in replayed] == [e.seq for e in live]
            auth_stats = stats["server"]["auth"]
            assert auth_stats["rejected"] >= 1
            assert auth_stats["accepted"] >= 2

    def test_expired_token_rejected(self, tmp_path, loopback):
        path = tmp_path / "tokens"
        path.write_text("old:tenant:1000000000\nfresh:tenant\n")
        thread, host, port = loopback(
            server_config=ServerConfig(auth_token_file=str(path))
        )
        with pytest.raises(ServerError, match="authentication failed"):
            _client(host, port, token="old")
        with _client(host, port, token="fresh") as client:
            assert client.namespace == "tenant"

    def test_token_forces_namespace(self, tmp_path, loopback):
        path = tmp_path / "tokens"
        path.write_text("a-token:tenant-a\nfree-token\n")
        thread, host, port = loopback(
            server_config=ServerConfig(auth_token_file=str(path))
        )
        # The credential wins over the requested namespace ...
        with _client(host, port, token="a-token", namespace="other") as client:
            assert client.namespace == "tenant-a"
        # ... while an unpinned token leaves the namespace to the client.
        with _client(host, port, token="free-token", namespace="mine") as client:
            assert client.namespace == "mine"

    def test_v2_peer_authenticates_identically(self, loopback):
        thread, host, port = loopback(
            server_config=ServerConfig(auth_token="s3cret")
        )
        with pytest.raises(ServerError, match="authentication failed"):
            _client(host, port, max_protocol=2, token="wrong")
        with _client(host, port, max_protocol=2, token="s3cret") as client:
            assert client.protocol_version == 2
            assert client.ingest("app", [1, 2, 3] * 30) is not None

    def test_async_client_auth(self, loopback):
        thread, host, port = loopback(
            server_config=ServerConfig(auth_token="s3cret")
        )
        endpoint = Endpoint(host=host, port=port)

        async def run():
            with pytest.raises(ServerError, match="authentication failed"):
                await AsyncDetectionClient.connect(endpoint, namespace="ns")
            client = await AsyncDetectionClient.connect(
                endpoint, namespace="ns", token="s3cret"
            )
            try:
                return await client.ingest("app", [1, 2, 3] * 30)
            finally:
                await client.close()

        assert asyncio.run(run()) is not None

    def test_tls_plus_auth(self, loopback):
        thread, host, port = loopback(
            server_config=ServerConfig(
                tls_cert=TLS_CERT, tls_key=TLS_KEY, auth_token="s3cret"
            )
        )
        url = f"repros://s3cret@{host}:{port}?ca={TLS_CERT}"
        with DetectionClient(url, namespace="ns") as client:
            assert client.ingest("app", [4, 5, 6] * 30) is not None
        with pytest.raises(ServerError, match="authentication failed"):
            DetectionClient(f"repros://{host}:{port}?ca={TLS_CERT}")


class TestRouterAuth:
    def test_router_requires_token_and_mutates_nothing(self, loopback):
        thread, host, port = loopback(pool_config=event_config())
        with RouterThread(
            [f"{host}:{port}"], RouterConfig(auth_token="upstream")
        ) as (rhost, rport):
            with pytest.raises(ServerError, match="authentication failed"):
                _client(rhost, rport, namespace="ns")
            with _client(
                rhost, rport, namespace="ns", token="upstream"
            ) as client:
                live = client.ingest("app", [1, 2, 3] * 40)
                assert live
            # A rejected fresh handshake reaches no backend: the stream
            # (and its seq history) survives on the fleet.
            with pytest.raises(ServerError):
                _client(rhost, rport, namespace="ns", token="bad", fresh=True)
            with _client(
                rhost, rport, namespace="ns", token="upstream"
            ) as client:
                replayed, gap = client.replay("app", 0)
                assert gap is None
                assert [e.seq for e in replayed] == [e.seq for e in live]
                auth_stats = client.stats()["server"]["auth"]
                assert auth_stats["rejected"] >= 2

    def test_router_presents_backend_token(self, loopback):
        thread, host, port = loopback(
            pool_config=event_config(),
            server_config=ServerConfig(auth_token="backend-secret"),
        )
        config = RouterConfig(backend_token="backend-secret")
        with RouterThread([f"{host}:{port}"], config) as (rhost, rport):
            with _client(rhost, rport, namespace="ns") as client:
                assert client.ingest("app", [1, 2, 3] * 40)

    def test_router_without_backend_token_cannot_join(self, loopback):
        thread, host, port = loopback(
            pool_config=event_config(),
            server_config=ServerConfig(auth_token="backend-secret"),
        )
        with RouterThread([f"{host}:{port}"], RouterConfig(connect_retries=0)) as (
            rhost,
            rport,
        ):
            with pytest.raises(ServerError):
                _client(rhost, rport, namespace="ns").ingest("app", [1, 2, 3])
