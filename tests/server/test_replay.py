"""Durable event sequencing end-to-end: journal, REPLAY, auto-resume.

The acceptance scenario of the sequencing PR: a subscriber that the
server dropped events on (slow consumer) — or that was disconnected
entirely — recovers via ``REPLAY`` and ends with the exact per-stream
event sequence an unthrottled subscriber saw, seq-for-seq, for both a
plain pool and a 2-worker sharded pool behind the server.  Ranges the
bounded journal has already evicted surface through ``EVENTS_GAP`` and
the client's ``on_gap`` callback, exactly once per evicted range.
"""

from __future__ import annotations

import asyncio
import socket

import pytest

from _server_helpers import event_config, event_traces
from repro.server.client import (
    RETRY_DELAY_CAP,
    AsyncDetectionClient,
    DetectionClient,
    ServerError,
    backoff_delay,
)
from repro.server.server import EventJournal, ServerConfig, ServerThread
from repro.service.events import PeriodStartEvent
from repro.service.pool import DetectorPool
from repro.service.sharding import ShardedDetectorPool, ShardingConfig


def ev(stream: str, seq: int, index: int = 0) -> PeriodStartEvent:
    return PeriodStartEvent(stream, index or seq, 3, 1.0, False, seq=seq)


def seq_view(events) -> dict[str, list[int]]:
    out: dict[str, list[int]] = {}
    for event in events:
        out.setdefault(event.stream_id, []).append(event.seq)
    return out


def by_stream(events) -> dict[str, list[PeriodStartEvent]]:
    out: dict[str, list[PeriodStartEvent]] = {}
    for event in events:
        out.setdefault(event.stream_id, []).append(event)
    return out


# ----------------------------------------------------------------------
# the journal ring itself
# ----------------------------------------------------------------------
class TestEventJournal:
    def test_full_range_replays_without_gap(self):
        journal = EventJournal(16)
        journal.append([ev("a", i) for i in range(5)])
        events, gap = journal.replay("a", 2)
        assert [e.seq for e in events] == [2, 3, 4]
        assert gap is None

    def test_upto_bounds_the_range(self):
        journal = EventJournal(16)
        journal.append([ev("a", i) for i in range(6)])
        events, gap = journal.replay("a", 1, 4)
        assert [e.seq for e in events] == [1, 2, 3]
        assert gap is None

    def test_streams_interleave_but_replay_separately(self):
        journal = EventJournal(16)
        journal.append([ev("a", 0), ev("b", 0), ev("a", 1), ev("b", 1), ev("a", 2)])
        events, gap = journal.replay("b", 0)
        assert [e.seq for e in events] == [0, 1]
        assert gap is None

    def test_eviction_reports_first_available(self):
        journal = EventJournal(4)
        journal.append([ev("a", i) for i in range(10)])  # ring keeps 6..9
        assert len(journal) == 4
        assert journal.evicted == 6
        events, gap = journal.replay("a", 2)
        assert [e.seq for e in events] == [6, 7, 8, 9]
        assert gap == 6

    def test_fully_evicted_bounded_range_gaps_to_upto(self):
        journal = EventJournal(4)
        journal.append([ev("a", i) for i in range(10)])
        events, gap = journal.replay("a", 2, 5)
        assert events == []
        assert gap == 5

    def test_fully_evicted_open_range_gaps_past_last(self):
        journal = EventJournal(0)  # journaling disabled: evict everything
        journal.append([ev("a", 0), ev("a", 1)])
        events, gap = journal.replay("a", 0)
        assert events == []
        assert gap == 2  # everything through the last appended seq is lost

    def test_nothing_missed_is_not_a_gap(self):
        journal = EventJournal(8)
        journal.append([ev("a", i) for i in range(3)])
        events, gap = journal.replay("a", 3)  # next seq: nothing to fetch
        assert events == []
        assert gap is None

    def test_empty_range_is_not_a_gap(self):
        journal = EventJournal(4)
        journal.append([ev("a", i) for i in range(10)])  # head evicted
        assert journal.replay("a", 3, 3) == ([], None)

    def test_unknown_stream(self):
        journal = EventJournal(8)
        # From scratch (seq 0) nothing is provably lost; a positive
        # from_seq proves events existed, so the loss — of unknown
        # extent, hence the degenerate gap_end == from_seq — is
        # reported, never silenced.
        assert journal.replay("ghost", 0) == ([], None)
        assert journal.replay("ghost", 5) == ([], 5)
        assert journal.replay("ghost", 0, 5) == ([], 5)
        assert journal.last_seq("ghost") is None

    def test_seq_restart_purges_the_previous_incarnation(self):
        # A stream re-created after LRU eviction restarts at seq 0; the
        # old incarnation's entries must never replay into the new
        # numbering.
        journal = EventJournal(16)
        journal.append([ev("a", i) for i in range(9)])
        journal.append([ev("b", 0)])  # another stream, untouched by the purge
        journal.append([ev("a", i) for i in range(3)])  # restart
        events, gap = journal.replay("a", 1)
        assert [e.seq for e in events] == [1, 2]
        assert gap is None
        assert journal.replay("b", 0) == ([ev("b", 0)], None)


# ----------------------------------------------------------------------
# REPLAY over the wire
# ----------------------------------------------------------------------
class TestReplayRequests:
    def test_replay_returns_journaled_events(self, loopback):
        _, host, port = loopback()
        with DetectionClient(host, port, namespace="prod") as producer:
            produced = []
            for sid, trace in event_traces(3).items():
                produced.extend(producer.ingest(sid, trace))
            assert produced
            with DetectionClient(host, port, namespace="prod") as other:
                for sid, events in by_stream(produced).items():
                    replayed, gap = other.replay(sid, 0)
                    assert gap is None
                    assert replayed == events  # event-for-event, seq included
                    middle, gap = other.replay(sid, 1, upto=3)
                    assert gap is None
                    assert middle == events[1:3]

    def test_replay_of_evicted_range_reports_gap_not_silence(self, loopback):
        _, host, port = loopback(server_config=ServerConfig(journal_size=8))
        with DetectionClient(host, port, namespace="prod") as producer:
            sid, trace = next(iter(event_traces(1, samples=240).items()))
            produced = producer.ingest(sid, trace)
            assert len(produced) > 8
            replayed, first_available = producer.replay(sid, 0)
            assert first_available == produced[-8].seq
            assert replayed == produced[-8:]

    def test_replay_scope_all_uses_full_ids(self, loopback):
        _, host, port = loopback()
        with DetectionClient(host, port, namespace="prod") as producer:
            sid, trace = next(iter(event_traces(1).items()))
            produced = producer.ingest(sid, trace)
            with DetectionClient(host, port, namespace="watcher") as watcher:
                replayed, gap = watcher.replay(f"prod/{sid}", 0, scope="all")
                assert gap is None
                assert seq_view(replayed) == {f"prod/{sid}": [e.seq for e in produced]}

    def test_replay_validates_range(self, loopback):
        # A malformed range is a protocol violation: the server answers
        # ERROR and closes, like every other malformed request — hence
        # one client per attempt.
        _, host, port = loopback()
        with DetectionClient(host, port) as client:
            with pytest.raises(ServerError, match="replay range"):
                client.replay("app", -1)
        with DetectionClient(host, port) as client:
            with pytest.raises(ServerError, match="replay range"):
                client.replay("app", 5, upto=2)

    def test_replay_unknown_namespace_is_explicit(self, loopback):
        _, host, port = loopback()
        with DetectionClient(host, port, namespace="fresh-ns") as client:
            events, gap = client.replay("never-seen", 0, upto=4)
            assert events == []
            assert gap == 4

    def test_stats_expose_journal_and_replays(self, loopback):
        _, host, port = loopback()
        with DetectionClient(host, port, namespace="prod") as client:
            sid, trace = next(iter(event_traces(1).items()))
            produced = client.ingest(sid, trace)
            client.replay(sid, 0)
            stats = client.stats()["server"]
            assert stats["replays_served"] == 1
            assert stats["replay_gaps"] == 0
            assert stats["journal"]["appended"] == len(produced)
            assert stats["journal"]["entries"] == len(produced)

    def test_fresh_handshake_resets_the_journal(self, loopback):
        _, host, port = loopback()
        with DetectionClient(host, port, namespace="prod") as client:
            sid, trace = next(iter(event_traces(1).items()))
            assert client.ingest(sid, trace)
        with DetectionClient(host, port, namespace="prod", fresh=True) as client:
            # The namespace restarted at seq 0; stale journal entries
            # must not be replayable.
            events, gap = client.replay(sid, 0)
            assert events == []
            assert gap is None


# ----------------------------------------------------------------------
# transparent subscriber resume
# ----------------------------------------------------------------------
def drain(client: DetectionClient, *, timeout: float) -> list[PeriodStartEvent]:
    """Read pushed batches (gap-resolved) until ``timeout`` of silence."""
    out: list[PeriodStartEvent] = []
    while True:
        batch = client.next_events(timeout=timeout)
        if batch is None:
            return out
        out.extend(batch)


class TestSubscriberResume:
    def test_reconnecting_subscriber_recovers_missed_events(self, loopback):
        _, host, port = loopback()
        with DetectionClient(host, port, namespace="prod") as producer:
            traces = event_traces(2, samples=360)
            phases = [
                {sid: trace[lo:hi] for sid, trace in traces.items()}
                for lo, hi in ((0, 120), (120, 240), (240, 360))
            ]
            subscriber = DetectionClient(host, port, namespace="prod")
            subscriber.subscribe()
            produced = producer.ingest_many(phases[0])
            seen = drain(subscriber, timeout=1.0)
            assert seq_view(seen) == seq_view(produced)
            carried = subscriber.last_seqs
            subscriber.close()

            produced += producer.ingest_many(phases[1])  # missed entirely

            gaps: list[tuple] = []
            resumed = DetectionClient(
                host,
                port,
                namespace="prod",
                resume_seqs=carried,
                on_gap=lambda *args: gaps.append(args),
            )
            try:
                resumed.subscribe()
                produced += producer.ingest_many(phases[2])
                seen += drain(resumed, timeout=1.0)
            finally:
                resumed.close()
            assert gaps == []  # journal still held the whole range
            assert seq_view(seen) == seq_view(produced)
            assert by_stream(seen) == by_stream(produced)

    def test_on_gap_fires_exactly_once_per_evicted_range(self, loopback):
        _, host, port = loopback(server_config=ServerConfig(journal_size=8))
        with DetectionClient(host, port, namespace="prod") as producer:
            sid, trace = next(iter(event_traces(1, samples=480).items()))
            subscriber = DetectionClient(host, port, namespace="prod")
            subscriber.subscribe()
            produced = producer.ingest(sid, trace[:80])
            seen = drain(subscriber, timeout=1.0)
            carried = subscriber.last_seqs
            subscriber.close()

            # Miss far more than the journal holds: the head is gone.
            missed = producer.ingest(sid, trace[80:400])
            assert len(missed) > 8

            gaps: list[tuple] = []
            resumed = DetectionClient(
                host,
                port,
                namespace="prod",
                resume_seqs=carried,
                on_gap=lambda *args: gaps.append(args),
            )
            try:
                resumed.subscribe()
                tail = producer.ingest(sid, trace[400:])
                assert tail  # the push that reveals the gap
                seen += drain(resumed, timeout=1.0)
            finally:
                resumed.close()

            produced += missed + tail
            lost_from = carried[sid] + 1
            # Everything still journaled when the gap was detected came
            # back; the evicted head is reported exactly once.
            assert len(gaps) == 1
            stream, from_seq, first_available = gaps[0]
            assert (stream, from_seq) == (sid, lost_from)
            assert from_seq < first_available
            delivered = seq_view(seen)[sid]
            expected = [e.seq for e in produced]
            assert delivered == [
                s for s in expected if s < lost_from or s >= first_available
            ]
            # The recovered suffix is contiguous: nothing silently lost
            # beyond the reported range.
            resumed_part = [s for s in delivered if s >= first_available]
            assert resumed_part == list(
                range(first_available, expected[-1] + 1)
            )

    def test_resync_reports_a_lost_range_once_then_advances(self, loopback):
        # A resync that finds part of the range evicted must advance the
        # client's baseline past the reported loss: a second resync (the
        # drain-then-resync shutdown pattern) must not re-fire on_gap
        # for the same range, and must fetch nothing new.
        _, host, port = loopback(server_config=ServerConfig(journal_size=8))
        with DetectionClient(host, port, namespace="prod") as producer:
            sid, trace = next(iter(event_traces(1, samples=300).items()))
            produced = producer.ingest(sid, trace)
            assert len(produced) > 8

            gaps: list[tuple] = []
            with DetectionClient(
                host,
                port,
                namespace="prod",
                resume_seqs={sid: -1},
                on_gap=lambda *args: gaps.append(args),
            ) as late:
                recovered = late.resync([sid])
                assert [e.seq for e in recovered] == [
                    e.seq for e in produced[-8:]
                ]
                assert gaps == [(sid, 0, produced[-8].seq)]
                assert late.resync([sid]) == []
                assert len(gaps) == 1  # not re-reported

    def test_async_subscriber_auto_resume(self, loopback):
        _, host, port = loopback()

        async def run():
            producer = await AsyncDetectionClient.connect(
                host, port, namespace="prod"
            )
            traces = event_traces(2, samples=360)
            produced = await producer.ingest_many(
                {sid: t[:180] for sid, t in traces.items()}
            )
            subscriber = await AsyncDetectionClient.connect(
                host, port, namespace="prod", resume_seqs={sid: -1 for sid in traces}
            )
            await subscriber.subscribe()
            # The subscriber joined after the first phase: its seed of -1
            # makes the first push reveal seqs 0.. as a gap to replay.
            produced += await producer.ingest_many(
                {sid: t[180:] for sid, t in traces.items()}
            )
            seen: list[PeriodStartEvent] = []
            while True:
                batch = await subscriber.next_events(timeout=1.0)
                if batch is None:
                    break
                seen.extend(batch)
            await subscriber.close()
            await producer.close()
            return produced, seen

        produced, seen = asyncio.run(run())
        assert seen
        assert by_stream(seen) == by_stream(produced)


# ----------------------------------------------------------------------
# the acceptance loopback: throttled-until-dropped subscriber recovery
# ----------------------------------------------------------------------
def _tiny_rcvbuf_create_connection(address, timeout=None, source_address=None):
    """``socket.create_connection`` with a tiny receive buffer set *before*
    connect: the buffer is then locked (no autotuning) and the advertised
    TCP window stays small, so a subscriber that stops reading stalls the
    server's writer within ~100 kB instead of megabytes — which is what
    makes its push queue overflow (and drop) deterministically fast."""
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 4096)
        sock.settimeout(timeout)
        sock.connect(address)
    except BaseException:
        sock.close()
        raise
    return sock


@pytest.mark.parametrize("workers", [1, 2], ids=["plain-pool", "sharded-2w"])
def test_throttled_subscriber_recovers_exact_sequence(workers, monkeypatch):
    config = event_config()
    pool = (
        DetectorPool(config)
        if workers == 1
        else ShardedDetectorPool(config, ShardingConfig(workers=workers))
    )
    server_config = ServerConfig(push_queue=1, journal_size=1_000_000)
    thread = ServerThread(pool, server_config)
    host, port = thread.start()
    # Accepted sockets inherit the listener's buffer sizes (Linux): a
    # small server-side send buffer plus the subscriber's tiny receive
    # buffer bound how much TCP absorbs, so an unread connection stalls
    # the writer — and overflows the push queue — within ~100 kB.
    for listener in thread.server._server.sockets:
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF, 8192)
    try:
        gaps: list[tuple] = []
        producer = DetectionClient(host, port, namespace="prod")
        unthrottled = DetectionClient(host, port, namespace="prod")
        unthrottled.subscribe()
        with monkeypatch.context() as patched:
            patched.setattr(
                "socket.create_connection", _tiny_rcvbuf_create_connection
            )
            throttled = DetectionClient(
                host, port, namespace="prod", on_gap=lambda *args: gaps.append(args)
            )
        throttled.subscribe()

        traces = event_traces(4, samples=80 * 256)
        produced: list[PeriodStartEvent] = []
        seen_live: list[PeriodStartEvent] = []
        dropped_at: int | None = None
        for chunk in range(80):
            lo, hi = chunk * 256, (chunk + 1) * 256
            produced.extend(
                producer.ingest_many(
                    {sid: trace[lo:hi] for sid, trace in traces.items()}
                )
            )
            # The unthrottled subscriber keeps up; the throttled one
            # reads nothing, so its pushes pile up and start dropping.
            while (batch := unthrottled.next_events(timeout=0.05)) is not None:
                seen_live.extend(batch)
            if dropped_at is None and chunk % 5 == 4:
                stats = producer.stats()["server"]
                if stats["dropped_events"] > 0:
                    dropped_at = chunk
            elif dropped_at is not None and chunk >= dropped_at + 3:
                break  # a few more chunks so the drop is an interior gap
        stats = producer.stats()["server"]
        assert stats["dropped_events"] > 0, "the subscriber was never throttled"

        seen_live.extend(drain(unthrottled, timeout=1.0))
        seen_live.extend(unthrottled.resync(traces))
        # Now the throttled subscriber finally reads: buffered pushes
        # first, then any surviving post-drop push reveals seq gaps
        # which next_events recovers through REPLAY automatically; a
        # terminal resync catches the tail whose pushes were themselves
        # dropped (no later push left to reveal them).
        recovered = drain(throttled, timeout=1.0)
        recovered.extend(throttled.resync(traces))

        assert gaps == []  # journal held everything: full recovery
        assert producer.stats()["server"]["replays_served"] > 0
        # Event-for-event, seq-for-seq: the dropped subscriber ends with
        # exactly the sequence the unthrottled one (and the producer's
        # replies) saw.
        assert by_stream(recovered) == by_stream(seen_live)
        assert by_stream(recovered) == by_stream(produced)
        for seqs in seq_view(recovered).values():
            assert seqs == list(range(len(seqs)))

        producer.close()
        unthrottled.close()
        throttled.close()
    finally:
        thread.stop()


# ----------------------------------------------------------------------
# reconnect backoff
# ----------------------------------------------------------------------
class TestReconnectBackoff:
    """Reconnects back off exponentially with jitter, bounded by a cap.

    A fleet of clients facing a restarting server (or router backend)
    must neither hammer it in lockstep nor wait unboundedly long —
    ``backoff_delay`` owns that policy for both client flavours and the
    router's downstream links.
    """

    def test_delay_grows_exponentially_within_jitter_bounds(self):
        base = 0.25
        for attempt in range(12):
            bound = min(base * 2**attempt, RETRY_DELAY_CAP)
            for _ in range(50):
                delay = backoff_delay(attempt, base)
                assert bound * 0.5 <= delay <= bound

    def test_delay_is_capped(self):
        assert backoff_delay(60, 1.0) <= RETRY_DELAY_CAP
        assert backoff_delay(0, 100.0) <= RETRY_DELAY_CAP

    def test_delay_jitters(self):
        delays = {backoff_delay(3, 0.25) for _ in range(20)}
        assert len(delays) > 1  # not a fixed schedule

    def _closed_port(self) -> int:
        with socket.socket() as sock:
            sock.bind(("127.0.0.1", 0))
            return sock.getsockname()[1]

    def test_blocking_connect_sleeps_per_schedule_then_raises(self, monkeypatch):
        sleeps: list[float] = []
        monkeypatch.setattr("repro.server.client.time.sleep", sleeps.append)
        retry_delay = 0.2
        with pytest.raises(ConnectionRefusedError):
            DetectionClient(
                "127.0.0.1",
                self._closed_port(),
                connect_retries=4,
                retry_delay=retry_delay,
            )
        assert len(sleeps) == 4  # one backoff between each of 5 attempts
        for attempt, slept in enumerate(sleeps):
            bound = min(retry_delay * 2**attempt, RETRY_DELAY_CAP)
            assert bound * 0.5 <= slept <= bound

    def test_async_connect_retries_then_raises(self, monkeypatch):
        sleeps: list[float] = []

        async def fake_sleep(delay: float) -> None:
            sleeps.append(delay)

        monkeypatch.setattr("repro.server.client.asyncio.sleep", fake_sleep)

        async def attempt() -> None:
            await AsyncDetectionClient.connect(
                "127.0.0.1",
                self._closed_port(),
                connect_retries=3,
                retry_delay=0.1,
            )

        with pytest.raises(ConnectionRefusedError):
            asyncio.run(attempt())
        assert len(sleeps) == 3
        for attempt_no, slept in enumerate(sleeps):
            bound = min(0.1 * 2**attempt_no, RETRY_DELAY_CAP)
            assert bound * 0.5 <= slept <= bound

    def test_successful_retry_preserves_resume_semantics(self, loopback):
        # A reconnect that needed no retries is the common case; what
        # matters is that the retry knobs do not disturb resume_seqs /
        # on_gap behaviour on the connection that finally succeeds.
        _, host, port = loopback()
        traces = event_traces(2, samples=240)
        with DetectionClient(host, port, namespace="prod") as producer:
            subscriber = DetectionClient(host, port, namespace="prod")
            subscriber.subscribe()
            produced = producer.ingest_many(
                {sid: tr[:120] for sid, tr in traces.items()}
            )
            seen = drain(subscriber, timeout=1.0)
            carried = subscriber.last_seqs
            subscriber.close()

            produced += producer.ingest_many(
                {sid: tr[120:] for sid, tr in traces.items()}
            )  # missed while away
            gaps: list[tuple] = []
            resumed = DetectionClient(
                host,
                port,
                namespace="prod",
                connect_retries=3,
                retry_delay=0.05,
                resume_seqs=carried,
                on_gap=lambda *args: gaps.append(args),
            )
            try:
                resumed.subscribe()
                seen += resumed.resync(traces)
            finally:
                resumed.close()
            assert gaps == []
            assert by_stream(seen) == by_stream(produced)
