"""Per-namespace admission quotas: caps, token bucket, STATS, router.

Stream-cap and subscriber-cap violations answer ERROR for that one
request; rate-limit violations answer BUSY through the same in-order
reply machinery as inflight backpressure.  All three leave the
connection (and every admitted stream) alive, and all three hold
identically over plaintext, TLS, and through the router.
"""

from __future__ import annotations

import time

import pytest

from _server_helpers import TLS_CERT, TLS_KEY, event_config
from repro.server.client import DetectionClient, ServerBusy, ServerError
from repro.server.endpoint import Endpoint
from repro.server.quotas import QuotaManager, QuotaPolicy
from repro.server.router import RouterConfig, RouterThread
from repro.server.server import ServerConfig
from repro.util.validation import ValidationError


def _client(host, port, **kwargs) -> DetectionClient:
    return DetectionClient(Endpoint(host=host, port=port), **kwargs)


class TestQuotaPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            QuotaPolicy(max_streams=0)
        with pytest.raises(ValueError):
            QuotaPolicy(max_samples_per_s=-1)
        with pytest.raises(ValueError):
            QuotaPolicy.from_mapping({"max_streams": 1, "max_cpus": 4})
        assert not QuotaPolicy().limits_anything()
        assert QuotaPolicy(max_streams=1).limits_anything()

    def test_server_config_validation(self):
        with pytest.raises(ValidationError, match="bad quota"):
            ServerConfig(quota_max_streams=-3)
        with pytest.raises(ValidationError, match="bad quota"):
            ServerConfig(quotas={"ns": {"max_cpus": 4}})


class TestQuotaManagerUnit:
    def test_debt_bucket_admits_oversized_batch_then_recovers(self):
        now = [0.0]
        manager = QuotaManager(
            QuotaPolicy(max_samples_per_s=100.0), clock=lambda: now[0]
        )
        # A batch larger than the burst is admitted into debt ...
        assert manager.admit_ingest("ns", ["a"], 250, 1000) is None
        # ... further ingest is throttled while the balance is negative ...
        assert manager.admit_ingest("ns", ["a"], 1, 4) == "throttled"
        now[0] = 1.0  # +100 tokens: still -50
        assert manager.admit_ingest("ns", ["a"], 1, 4) == "throttled"
        now[0] = 2.0  # balance clears
        assert manager.admit_ingest("ns", ["a"], 1, 4) is None

    def test_stream_cap_counts_only_new_streams(self):
        manager = QuotaManager(QuotaPolicy(max_streams=2))
        assert manager.admit_ingest("ns", ["a", "b"], 10, 10) is None
        assert manager.admit_ingest("ns", ["a", "c"], 10, 10) == "streams"
        assert manager.admit_ingest("ns", ["a", "b"], 10, 10) is None
        manager.note_remove("ns", ["a"])
        assert manager.admit_ingest("ns", ["c"], 10, 10) is None

    def test_overrides_and_payload_roundtrip(self):
        manager = QuotaManager(
            QuotaPolicy(max_streams=5), {"vip": QuotaPolicy(max_streams=50)}
        )
        assert manager.policy_for("vip").max_streams == 50
        assert manager.policy_for("other").max_streams == 5
        clone = QuotaManager.from_payload(manager.to_payload())
        assert clone.configured()
        assert clone.policy_for("vip").max_streams == 50
        assert clone.policy_for("other").max_streams == 5


class TestServerQuotas:
    def test_stream_cap_errors_and_connection_survives(self, loopback):
        thread, host, port = loopback(
            server_config=ServerConfig(quota_max_streams=2)
        )
        with _client(host, port, namespace="ns") as client:
            assert client.ingest_many(
                {"a": [1, 2, 3] * 20, "b": [4, 5, 6] * 20}
            ) is not None
            with pytest.raises(ServerError, match="stream quota"):
                client.ingest("c", [7, 8, 9] * 20)
            # The connection and the admitted streams keep working.
            assert client.ingest("a", [1, 2, 3] * 20) is not None
            counters = client.stats()["server"]["quotas"]["ns"]
            assert counters["denied_streams"] == 1
            assert counters["streams"] == 2
            assert counters["admitted"] >= 2

    def test_rate_limit_busy_then_recovery(self, loopback):
        thread, host, port = loopback(
            server_config=ServerConfig(quota_max_samples_per_s=1000.0)
        )
        with _client(host, port, namespace="ns") as client:
            # 1500 samples dive the bucket ~500 into debt ...
            assert client.ingest("app", [1, 2, 3] * 500) is not None
            # ... so the immediate next batch answers BUSY, in order.
            with pytest.raises(ServerBusy):
                client.ingest("app", [1, 2, 3])
            # The bucket refills at 1000/s; the tenant recovers without
            # reconnecting.
            time.sleep(1.2)
            assert client.ingest("app", [1, 2, 3]) is not None
            counters = client.stats()["server"]["quotas"]["ns"]
            assert counters["throttled"] >= 1
            assert counters["samples"] >= 1503

    def test_subscriber_cap(self, loopback):
        thread, host, port = loopback(
            server_config=ServerConfig(quota_max_subscribers=1)
        )
        first = _client(host, port, namespace="ns")
        second = _client(host, port, namespace="ns")
        try:
            first.subscribe()
            with pytest.raises(ServerError, match="subscriber quota"):
                second.subscribe()
            # The denied connection stays usable for everything else.
            assert second.ingest("app", [1, 2, 3] * 20) is not None
            counters = second.stats()["server"]["quotas"]["ns"]
            assert counters["subscribers_denied"] == 1
            assert counters["subscribers"] == 1
        finally:
            first.close()
            second.close()
        # Once the server notices the disconnect the slot frees up.
        third = _client(host, port, namespace="ns")
        try:
            deadline = time.monotonic() + 10.0
            while True:
                try:
                    third.subscribe()
                    break
                except ServerError:
                    if time.monotonic() >= deadline:
                        raise
                    time.sleep(0.05)
        finally:
            third.close()

    def test_per_namespace_isolation(self, loopback):
        thread, host, port = loopback(
            server_config=ServerConfig(quotas={"small": {"max_streams": 1}})
        )
        with _client(host, port, namespace="small") as client:
            assert client.ingest("a", [1, 2, 3] * 20) is not None
            with pytest.raises(ServerError, match="stream quota"):
                client.ingest("b", [1, 2, 3] * 20)
        # Other namespaces are untouched by the override.
        with _client(host, port, namespace="big") as client:
            assert client.ingest_many(
                {f"s{i}": [1, 2, 3] * 20 for i in range(5)}
            ) is not None

    def test_quotas_enforced_over_tls(self, loopback):
        thread, host, port = loopback(
            server_config=ServerConfig(
                tls_cert=TLS_CERT,
                tls_key=TLS_KEY,
                quota_max_samples_per_s=1000.0,
            )
        )
        url = f"repros://{host}:{port}?ca={TLS_CERT}"
        with DetectionClient(url, namespace="ns") as client:
            assert client.ingest("app", [1, 2, 3] * 500) is not None
            with pytest.raises(ServerBusy):
                client.ingest("app", [1, 2, 3])
            time.sleep(1.2)
            assert client.ingest("app", [1, 2, 3]) is not None

    def test_quota_config_survives_state_dir_restart(self, tmp_path, loopback):
        state = str(tmp_path / "state")
        thread, host, port = loopback(
            server_config=ServerConfig(
                state_dir=state, checkpoint_interval=60.0, quota_max_streams=1
            )
        )
        with _client(host, port, namespace="ns") as client:
            assert client.ingest("a", [1, 2, 3] * 20) is not None
        thread.stop()
        # The restart names no quota flags: the stored configuration
        # (and the restored stream, counted against the cap) apply.
        thread2, host, port = loopback(
            server_config=ServerConfig(state_dir=state, checkpoint_interval=60.0)
        )
        with _client(host, port, namespace="ns") as client:
            with pytest.raises(ServerError, match="stream quota"):
                client.ingest("b", [1, 2, 3] * 20)
            assert client.ingest("a", [1, 2, 3] * 20) is not None


class TestRouterQuotas:
    def test_quotas_enforced_through_router(self, loopback):
        thread, host, port = loopback(
            pool_config=event_config(),
            server_config=ServerConfig(
                quota_max_streams=2, quota_max_samples_per_s=1000.0
            ),
        )
        with RouterThread([f"{host}:{port}"]) as (rhost, rport):
            with _client(rhost, rport, namespace="ns") as client:
                # 1500 samples over two streams: admitted into debt.
                assert client.ingest_many(
                    {"a": [1, 2, 3] * 250, "b": [4, 5, 6] * 250}
                ) is not None
                # Backend BUSY passes through the router as BUSY.
                with pytest.raises(ServerBusy):
                    client.ingest("a", [1, 2, 3])
                time.sleep(1.2)
                assert client.ingest("a", [1, 2, 3]) is not None
                # The stream cap answers ERROR through the router too.
                with pytest.raises(ServerError, match="stream quota"):
                    client.ingest("c", [7, 8, 9])
                # Router STATS aggregates the backend quota counters.
                counters = client.stats()["server"]["quotas"]["ns"]
                assert counters["throttled"] >= 1
                assert counters["denied_streams"] >= 1
                assert counters["streams"] == 2
