"""Tests for the hardware-counter trace generators."""

import numpy as np
import pytest

from repro.core.detector import DetectorConfig, DynamicPeriodicityDetector
from repro.traces.hwcounters import CounterPhase, counter_deltas, hardware_counter_trace
from repro.util.validation import ValidationError


def phases():
    return [
        CounterPhase(duration=8, instructions_per_sample=1e6, miss_rate=0.02, flops_fraction=0.5),
        CounterPhase(duration=4, instructions_per_sample=2e5, miss_rate=0.10, flops_fraction=0.1),
        CounterPhase(duration=6, instructions_per_sample=8e5, miss_rate=0.01, flops_fraction=0.7),
    ]


class TestCounterPhase:
    def test_validation(self):
        with pytest.raises(Exception):
            CounterPhase(duration=0, instructions_per_sample=1e6)
        with pytest.raises(ValidationError):
            CounterPhase(duration=2, instructions_per_sample=1e6, flops_fraction=1.5)


class TestHardwareCounterTrace:
    def test_length_and_metadata(self):
        trace = hardware_counter_trace(phases(), iterations=5, relative_noise=0.0)
        assert len(trace) == 18 * 5
        assert trace.expected_periods == (18,)
        assert trace.metadata.attributes["counter"] == "instructions"

    def test_exactly_periodic_without_noise(self):
        trace = hardware_counter_trace(phases(), iterations=4, relative_noise=0.0)
        values = np.asarray(trace.values)
        assert np.array_equal(values[:18], values[18:36])

    def test_counter_selection_changes_rates(self):
        instr = hardware_counter_trace(phases(), 2, counter="instructions", relative_noise=0.0)
        misses = hardware_counter_trace(phases(), 2, counter="cache_misses", relative_noise=0.0)
        flops = hardware_counter_trace(phases(), 2, counter="flops", relative_noise=0.0)
        assert misses.values[0] == pytest.approx(instr.values[0] * 0.02)
        assert flops.values[0] == pytest.approx(instr.values[0] * 0.5)

    def test_invalid_counter(self):
        with pytest.raises(ValidationError):
            hardware_counter_trace(phases(), 2, counter="branches")

    def test_noise_keeps_values_non_negative(self):
        trace = hardware_counter_trace(phases(), 10, relative_noise=0.5, seed=3)
        assert np.all(np.asarray(trace.values) >= 0.0)

    def test_dpd_detects_iteration_period(self):
        trace = hardware_counter_trace(phases(), iterations=20, relative_noise=0.03, seed=1)
        detector = DynamicPeriodicityDetector(DetectorConfig(window_size=64, min_depth=0.2))
        detector.process(trace.values)
        assert detector.current_period == 18


class TestCounterDeltas:
    def test_simple_deltas(self):
        cumulative = np.array([0.0, 10.0, 25.0, 25.0, 40.0])
        deltas = counter_deltas(cumulative)
        assert deltas.tolist() == [0.0, 10.0, 15.0, 0.0, 15.0]

    def test_wraparound_treated_as_zero(self):
        cumulative = np.array([100.0, 150.0, 5.0, 30.0])
        deltas = counter_deltas(cumulative)
        assert deltas.tolist() == [0.0, 50.0, 0.0, 25.0]

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            counter_deltas(np.array([]))
