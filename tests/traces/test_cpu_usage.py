"""Tests for CPU-usage trace generation."""

import numpy as np
import pytest

from repro.traces.cpu_usage import CpuPhase, cpu_usage_trace, iteration_pattern
from repro.util.validation import ValidationError


class TestCpuPhase:
    def test_constant_phase(self):
        phase = CpuPhase(cpus=4, duration=5)
        assert phase.render().tolist() == [4.0] * 5

    def test_ramp_phase(self):
        phase = CpuPhase(cpus=8, duration=4, ramp_from=1)
        rendered = phase.render()
        assert rendered[0] == 1.0
        assert rendered[-1] == 8.0
        assert np.all(np.diff(rendered) >= 0)

    def test_invalid_duration(self):
        with pytest.raises(Exception):
            CpuPhase(cpus=2, duration=0)


class TestIterationPattern:
    def test_concatenation(self):
        pattern = iteration_pattern([CpuPhase(1, 2), CpuPhase(4, 3)])
        assert pattern.tolist() == [1.0, 1.0, 4.0, 4.0, 4.0]

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            iteration_pattern([])


class TestCpuUsageTrace:
    def phases(self):
        return [CpuPhase(1, 3), CpuPhase(8, 5), CpuPhase(1, 2)]

    def test_length_and_period_metadata(self):
        trace = cpu_usage_trace(self.phases(), iterations=6, amplitude_jitter=0.0)
        assert len(trace) == 10 * 6
        assert trace.expected_periods == (10,)
        assert trace.metadata.sampling_interval == 1e-3

    def test_exact_periodicity_without_jitter(self):
        trace = cpu_usage_trace(self.phases(), iterations=4, amplitude_jitter=0.0)
        values = np.asarray(trace.values)
        assert np.array_equal(values[:10], values[10:20])

    def test_jitter_changes_values_but_not_structure(self):
        trace = cpu_usage_trace(self.phases(), iterations=4, amplitude_jitter=0.5, max_cpus=8, seed=1)
        values = np.asarray(trace.values)
        assert values.min() >= 0
        assert values.max() <= 8
        assert not np.array_equal(values[:10], values[10:20])

    def test_warmup_and_cooldown(self):
        trace = cpu_usage_trace(
            self.phases(),
            iterations=2,
            warmup=[CpuPhase(1, 4)],
            cooldown=[CpuPhase(1, 3)],
            amplitude_jitter=0.0,
        )
        assert len(trace) == 4 + 20 + 3

    def test_values_are_integral_cpu_counts(self):
        trace = cpu_usage_trace(self.phases(), iterations=3, amplitude_jitter=0.7, max_cpus=8, seed=2)
        values = np.asarray(trace.values)
        assert np.array_equal(values, np.round(values))
