"""Tests for the NAS-FT-like CPU-usage trace (Figures 3/4 substrate)."""

import numpy as np
import pytest

from repro.core.detector import DetectorConfig, DynamicPeriodicityDetector
from repro.core.distance import amdf_profile
from repro.core.minima import select_period
from repro.traces.nas_ft import FT_MAX_CPUS, FT_PERIOD, ft_iteration_phases, generate_ft_cpu_trace
from repro.util.validation import ValidationError


class TestIterationPhases:
    def test_default_phases_total_44_samples(self):
        phases = ft_iteration_phases()
        assert sum(p.duration for p in phases) == FT_PERIOD

    @pytest.mark.parametrize("period", [30, 44, 60, 100])
    def test_custom_period_totals_match(self, period):
        phases = ft_iteration_phases(period)
        assert sum(p.duration for p in phases) == period

    def test_peak_cpus(self):
        phases = ft_iteration_phases()
        assert max(p.cpus for p in phases) == FT_MAX_CPUS

    def test_too_small_period_rejected(self):
        with pytest.raises(ValidationError):
            ft_iteration_phases(8)


class TestGeneratedTrace:
    def test_length_and_metadata(self, ft_trace):
        assert len(ft_trace) == 10 + 12 * FT_PERIOD
        assert ft_trace.metadata.sampling_interval == pytest.approx(1e-3)
        assert FT_PERIOD in ft_trace.expected_periods

    def test_cpu_bounds(self, ft_trace):
        values = np.asarray(ft_trace.values)
        assert values.min() >= 0
        assert values.max() == FT_MAX_CPUS

    def test_iterations_similar_but_not_identical(self, ft_trace):
        values = np.asarray(ft_trace.values)[10:]
        first = values[:FT_PERIOD]
        second = values[FT_PERIOD : 2 * FT_PERIOD]
        # Same overall shape (high correlation) but not an exact repetition,
        # as the paper observes for the real trace.
        corr = np.corrcoef(first, second)[0, 1]
        assert corr > 0.8
        assert not np.array_equal(first, second)

    def test_offline_profile_minimum_at_44(self, ft_trace):
        values = np.asarray(ft_trace.values, dtype=float)
        profile = amdf_profile(values[-256:], 100)
        candidate = select_period(profile, min_depth=0.2)
        assert candidate is not None
        assert candidate.lag == FT_PERIOD

    def test_streaming_detector_finds_44(self, ft_trace):
        detector = DynamicPeriodicityDetector(
            DetectorConfig(window_size=256, max_lag=128, min_depth=0.2)
        )
        detector.process(ft_trace.values)
        assert detector.current_period == FT_PERIOD

    def test_custom_period_is_detected(self):
        trace = generate_ft_cpu_trace(iterations=12, period=30, seed=3)
        detector = DynamicPeriodicityDetector(
            DetectorConfig(window_size=128, max_lag=64, min_depth=0.2)
        )
        detector.process(trace.values)
        assert detector.current_period == 30
