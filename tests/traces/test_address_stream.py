"""Tests for loop-address assignment and address-stream construction."""

import pytest

from repro.traces.address_stream import (
    AddressSpace,
    address_stream_from_pattern,
    loop_address,
    pattern_from_names,
)
from repro.util.validation import ValidationError


class TestLoopAddress:
    def test_addresses_are_distinct_and_ordered(self):
        addrs = [loop_address(i) for i in range(10)]
        assert len(set(addrs)) == 10
        assert addrs == sorted(addrs)

    def test_negative_index_rejected(self):
        with pytest.raises(ValidationError):
            loop_address(-1)


class TestAddressSpace:
    def test_address_of_is_stable(self):
        space = AddressSpace()
        a = space.address_of("loop_a")
        b = space.address_of("loop_b")
        assert a != b
        assert space.address_of("loop_a") == a
        assert len(space) == 2

    def test_empty_space_is_falsy_but_usable(self):
        # Regression guard: an empty AddressSpace must still be usable when
        # passed explicitly (it is falsy because it defines __len__).
        space = AddressSpace()
        assert not space
        assert space.address_of("x") == loop_address(0)
        assert len(space) == 1

    def test_name_of(self):
        space = AddressSpace()
        addr = space.address_of("foo")
        assert space.name_of(addr) == "foo"
        assert space.name_of(0xDEAD) is None

    def test_assign_and_conflict(self):
        space = AddressSpace()
        space.assign("foo", 0x1234)
        assert space.address_of("foo") == 0x1234
        with pytest.raises(ValidationError):
            space.assign("foo", 0x9999)

    def test_empty_name_rejected(self):
        space = AddressSpace()
        with pytest.raises(ValidationError):
            space.address_of("")


class TestPatternFromNames:
    def test_repeated_names_share_address(self):
        pattern = pattern_from_names(["a", "b", "a"])
        assert pattern[0] == pattern[2]
        assert pattern[0] != pattern[1]

    def test_shared_space(self):
        space = AddressSpace()
        first = pattern_from_names(["a"], space)
        second = pattern_from_names(["a", "b"], space)
        assert first[0] == second[0]


class TestAddressStreamFromPattern:
    def test_length_and_truncation(self):
        trace = address_stream_from_pattern([1, 2, 3], 8, name="x")
        assert len(trace) == 8
        assert trace.values.tolist() == [1, 2, 3, 1, 2, 3, 1, 2]
        assert trace.kind == "events"

    def test_metadata_carries_expected_periods(self):
        trace = address_stream_from_pattern([1, 2, 3], 9, expected_periods=(3,))
        assert trace.expected_periods == (3,)
        assert trace.metadata.attributes["pattern_length"] == 3

    def test_empty_pattern_rejected(self):
        with pytest.raises(ValidationError):
            address_stream_from_pattern([], 5)
