"""Tests for trace perturbations."""

import numpy as np
import pytest

from repro.traces.perturbation import (
    add_amplitude_noise,
    add_drift,
    drop_samples,
    jitter_period,
    perturb_trace,
)
from repro.traces.synthetic import make_trace, periodic_signal


class TestAmplitudeNoise:
    def test_zero_std_is_identity(self):
        values = np.arange(10.0)
        assert np.array_equal(add_amplitude_noise(values, 0.0), values)

    def test_noise_changes_values(self):
        values = np.zeros(100)
        noisy = add_amplitude_noise(values, 1.0, seed=1)
        assert not np.array_equal(noisy, values)
        assert abs(noisy.mean()) < 0.5


class TestDrift:
    def test_linear_drift(self):
        values = np.zeros(11)
        drifted = add_drift(values, 10.0)
        assert drifted[0] == 0.0
        assert drifted[-1] == pytest.approx(10.0)


class TestDropSamples:
    def test_zero_probability_keeps_everything(self):
        values = np.arange(20)
        assert np.array_equal(drop_samples(values, 0.0), values)

    def test_drops_roughly_expected_fraction(self):
        values = np.arange(10_000)
        kept = drop_samples(values, 0.3, seed=2)
        assert 0.6 < kept.size / values.size < 0.8

    def test_never_returns_empty(self):
        values = np.arange(5)
        kept = drop_samples(values, 1.0, seed=3)
        assert kept.size >= 1


class TestJitterPeriod:
    def test_zero_jitter_is_exact_tiling(self):
        pattern = np.array([1.0, 2.0, 3.0])
        out = jitter_period(pattern, 4, max_shift=0)
        assert out.tolist() == [1.0, 2.0, 3.0] * 4

    def test_jitter_changes_total_length_slightly(self):
        pattern = np.arange(10.0)
        out = jitter_period(pattern, 20, max_shift=2, seed=1)
        assert abs(out.size - 200) <= 40

    def test_invalid_iterations(self):
        with pytest.raises(ValueError):
            jitter_period(np.arange(3.0), 0)


class TestPerturbTrace:
    def test_keeps_metadata(self):
        trace = make_trace(periodic_signal(5, 50, seed=1), "p", expected_periods=(5,))
        out = perturb_trace(trace, noise_std=0.1, seed=4)
        assert out.name == "p"
        assert out.expected_periods == (5,)
        assert len(out) == len(trace)

    def test_event_trace_stays_integral(self):
        trace = make_trace(np.arange(10), "ev", kind="events")
        out = perturb_trace(trace, noise_std=0.2, seed=5)
        assert out.values.dtype == np.int64

    def test_dropping_shortens_trace(self):
        trace = make_trace(np.arange(1000.0), "d")
        out = perturb_trace(trace, drop_probability=0.5, seed=6)
        assert len(out) < len(trace)
