"""Tests for the generic synthetic signal generators."""

import numpy as np
import pytest

from repro.traces.synthetic import (
    aperiodic_signal,
    make_trace,
    nested_event_pattern,
    noisy_periodic_signal,
    periodic_signal,
    random_walk,
    repeat_pattern,
    sawtooth_wave,
    square_wave,
)
from repro.util.validation import ValidationError


class TestRepeatPattern:
    def test_exact_length(self):
        out = repeat_pattern([1, 2, 3], 8)
        assert out.tolist() == [1, 2, 3, 1, 2, 3, 1, 2]

    def test_empty_pattern_rejected(self):
        with pytest.raises(ValidationError):
            repeat_pattern([], 5)


class TestPeriodicGenerators:
    def test_periodic_signal_is_periodic(self):
        signal = periodic_signal(7, 70, seed=1)
        assert np.array_equal(signal[:7], signal[7:14])
        assert signal.size == 70

    def test_periodic_signal_reproducible(self):
        assert np.array_equal(periodic_signal(5, 50, seed=3), periodic_signal(5, 50, seed=3))

    def test_periodic_signal_distinct_values(self):
        signal = periodic_signal(10, 10, seed=2)
        assert len(set(signal.tolist())) == 10

    def test_noisy_signal_close_to_clean(self):
        clean = periodic_signal(6, 60, seed=4)
        noisy = noisy_periodic_signal(6, 60, noise_std=0.01, seed=4)
        assert np.max(np.abs(clean - noisy)) < 0.1

    def test_square_wave_levels_and_period(self):
        wave = square_wave(8, 64, low=0.0, high=4.0, duty=0.25)
        assert set(np.unique(wave)) == {0.0, 4.0}
        assert np.array_equal(wave[:8], wave[8:16])
        assert np.count_nonzero(wave[:8] == 4.0) == 2

    def test_square_wave_invalid_duty(self):
        with pytest.raises(ValidationError):
            square_wave(8, 16, duty=1.5)

    def test_sawtooth_rises_within_period(self):
        wave = sawtooth_wave(5, 20, amplitude=5.0)
        assert wave[0] == 0.0
        assert np.all(np.diff(wave[:5]) > 0)


class TestNestedPattern:
    def test_composition(self):
        pattern = nested_event_pattern(
            run_value=9, run_length=3, inner_pattern=[1, 2], inner_repetitions=2, tail=[7]
        )
        assert pattern.tolist() == [9, 9, 9, 1, 2, 1, 2, 7]

    def test_requires_run_value_with_run_length(self):
        with pytest.raises(ValidationError):
            nested_event_pattern(run_length=3)

    def test_requires_nonempty_result(self):
        with pytest.raises(ValidationError):
            nested_event_pattern()

    def test_inner_pattern_required_when_repeated(self):
        with pytest.raises(ValidationError):
            nested_event_pattern(inner_pattern=[], inner_repetitions=2)


class TestAperiodicGenerators:
    def test_aperiodic_reproducible(self):
        assert np.array_equal(aperiodic_signal(50, seed=1), aperiodic_signal(50, seed=1))

    def test_random_walk_length(self):
        assert random_walk(100, seed=2).size == 100


class TestMakeTrace:
    def test_wraps_metadata(self):
        trace = make_trace(np.arange(5), "demo", expected_periods=(5,), foo="bar")
        assert trace.name == "demo"
        assert trace.expected_periods == (5,)
        assert trace.metadata.attributes["foo"] == "bar"
