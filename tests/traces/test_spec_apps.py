"""Tests for the five SPECfp95-like application models (Table 2 substrate)."""

import numpy as np
import pytest

from repro.core.multiperiod import hierarchical_periodicities
from repro.traces.spec_apps import (
    PAPER_TABLE2,
    all_spec_models,
    apsi_model,
    generate_spec_stream,
    hydro2d_model,
    swim_model,
    tomcatv_model,
    turb3d_model,
)
from repro.util.validation import ValidationError


class TestModelStructure:
    def test_all_models_present(self):
        names = {m.name for m in all_spec_models()}
        assert names == set(PAPER_TABLE2)

    @pytest.mark.parametrize(
        "factory,loops",
        [(tomcatv_model, 5), (swim_model, 6), (apsi_model, 6)],
    )
    def test_flat_models_have_expected_pattern_length(self, factory, loops):
        model = factory()
        assert model.outer_period == loops
        assert len(set(model.outer_pattern.tolist())) == loops

    def test_hydro2d_structure(self):
        model = hydro2d_model()
        assert model.outer_period == 269
        assert model.expected_periods == (1, 24, 269)
        # The run of identical calls yields the periodicity-1 region.
        pattern = model.outer_pattern
        assert np.all(pattern[:29] == pattern[0])

    def test_turb3d_structure(self):
        model = turb3d_model()
        assert model.outer_period == 142
        assert model.expected_periods == (12, 142)
        # No consecutive repeats: periodicity 1 must NOT be present.
        pattern = model.outer_pattern
        assert np.all(pattern[1:] != pattern[:-1])

    def test_stream_lengths_match_paper(self):
        for model in all_spec_models():
            length, _ = PAPER_TABLE2[model.name]
            assert model.stream_length == length
            assert len(model.generate()) == length


class TestGroundTruthPeriodicities:
    @pytest.mark.parametrize("name", ["tomcatv", "swim", "apsi"])
    def test_flat_models_ground_truth(self, name):
        model = next(m for m in all_spec_models() if m.name == name)
        stream = model.generate(model.outer_period * 50)
        periods = hierarchical_periodicities(stream.values, max_period=30)
        assert periods == list(model.expected_periods)

    def test_hydro2d_ground_truth(self):
        model = hydro2d_model()
        stream = model.generate(269 * 8)
        periods = hierarchical_periodicities(stream.values, max_period=300)
        assert periods == [1, 24, 269]

    def test_turb3d_ground_truth(self):
        model = turb3d_model()
        stream = model.generate(142 * 8)
        periods = hierarchical_periodicities(stream.values, max_period=160)
        assert periods == [12, 142]


class TestGenerateSpecStream:
    def test_by_name(self):
        trace = generate_spec_stream("tomcatv", 100)
        assert len(trace) == 100
        assert trace.name == "tomcatv"

    def test_case_insensitive(self):
        trace = generate_spec_stream("SWIM", 60)
        assert trace.name == "swim"

    def test_unknown_application(self):
        with pytest.raises(ValidationError):
            generate_spec_stream("linpack")

    def test_generate_respects_default_length(self):
        trace = generate_spec_stream("turb3d")
        assert len(trace) == PAPER_TABLE2["turb3d"][0]
