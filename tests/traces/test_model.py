"""Tests for the Trace container and metadata."""

import numpy as np
import pytest

from repro.traces.model import Trace, TraceKind, TraceMetadata
from repro.util.validation import ValidationError


def sampled_metadata(**kwargs):
    defaults = dict(name="t", kind=TraceKind.SAMPLED, sampling_interval=1e-3)
    defaults.update(kwargs)
    return TraceMetadata(**defaults)


class TestTraceMetadata:
    def test_valid_kinds(self):
        TraceMetadata(name="a", kind=TraceKind.SAMPLED)
        TraceMetadata(name="b", kind=TraceKind.EVENTS)

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValidationError):
            TraceMetadata(name="a", kind="weird")

    def test_invalid_sampling_interval(self):
        with pytest.raises(ValidationError):
            TraceMetadata(name="a", kind=TraceKind.SAMPLED, sampling_interval=0.0)

    def test_expected_periods_normalised_to_ints(self):
        md = TraceMetadata(name="a", kind=TraceKind.EVENTS, expected_periods=(5.0, 7))
        assert md.expected_periods == (5, 7)


class TestTrace:
    def test_sampled_values_are_float(self):
        trace = Trace(np.array([1, 2, 3]), sampled_metadata())
        assert trace.values.dtype == np.float64
        assert len(trace) == 3

    def test_event_values_are_int(self):
        md = TraceMetadata(name="e", kind=TraceKind.EVENTS)
        trace = Trace(np.array([1.0, 2.0]), md)
        assert trace.values.dtype == np.int64

    def test_values_are_read_only(self):
        trace = Trace(np.arange(5), sampled_metadata())
        with pytest.raises(ValueError):
            trace.values[0] = 99

    def test_duration_and_time_axis(self):
        trace = Trace(np.arange(10), sampled_metadata(sampling_interval=0.5))
        assert trace.duration == pytest.approx(5.0)
        assert trace.time_axis()[1] == pytest.approx(0.5)

    def test_event_trace_has_no_duration(self):
        md = TraceMetadata(name="e", kind=TraceKind.EVENTS)
        trace = Trace(np.arange(4), md)
        assert trace.duration is None
        assert trace.time_axis().tolist() == [0.0, 1.0, 2.0, 3.0]

    def test_slice(self):
        trace = Trace(np.arange(10), sampled_metadata())
        sub = trace.slice(2, 5)
        assert sub.values.tolist() == [2.0, 3.0, 4.0]
        assert sub.name == trace.name

    def test_slice_invalid_bounds(self):
        trace = Trace(np.arange(5), sampled_metadata())
        with pytest.raises(ValidationError):
            trace.slice(-1, 3)
        with pytest.raises(ValidationError):
            trace.slice(4, 2)

    def test_with_values(self):
        trace = Trace(np.arange(5), sampled_metadata())
        other = trace.with_values(np.ones(3))
        assert other.values.tolist() == [1.0, 1.0, 1.0]
        assert other.metadata is trace.metadata

    def test_rejects_multidimensional(self):
        with pytest.raises(ValidationError):
            Trace(np.zeros((2, 2)), sampled_metadata())
