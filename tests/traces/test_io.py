"""Tests for trace serialisation."""

import numpy as np
import pytest

from repro.traces.io import load_trace, load_trace_csv, save_trace, save_trace_csv
from repro.traces.synthetic import make_trace, periodic_signal
from repro.util.validation import ValidationError


@pytest.fixture
def sampled_trace():
    return make_trace(
        periodic_signal(6, 60, seed=1),
        "roundtrip",
        sampling_interval=1e-3,
        expected_periods=(6,),
        description="a test trace",
        seed=1,
    )


@pytest.fixture
def event_trace():
    return make_trace(np.array([10, 20, 30] * 5), "events", kind="events", expected_periods=(3,))


class TestNpzRoundTrip:
    def test_values_and_metadata_preserved(self, tmp_path, sampled_trace):
        path = save_trace(sampled_trace, tmp_path / "trace")
        assert path.suffix == ".npz"
        loaded = load_trace(path)
        assert np.array_equal(loaded.values, sampled_trace.values)
        assert loaded.name == "roundtrip"
        assert loaded.metadata.sampling_interval == pytest.approx(1e-3)
        assert loaded.expected_periods == (6,)
        assert loaded.metadata.attributes["seed"] == 1

    def test_event_trace_round_trip(self, tmp_path, event_trace):
        path = save_trace(event_trace, tmp_path / "events.npz")
        loaded = load_trace(path)
        assert loaded.values.dtype == np.int64
        assert np.array_equal(loaded.values, event_trace.values)

    def test_missing_file(self, tmp_path):
        with pytest.raises(ValidationError):
            load_trace(tmp_path / "nope.npz")


class TestCsvRoundTrip:
    def test_values_preserved(self, tmp_path, sampled_trace):
        path = save_trace_csv(sampled_trace, tmp_path / "trace.csv")
        loaded = load_trace_csv(path)
        assert np.allclose(loaded.values, sampled_trace.values)
        assert loaded.name == "roundtrip"

    def test_event_trace_round_trip(self, tmp_path, event_trace):
        path = save_trace_csv(event_trace, tmp_path / "events")
        loaded = load_trace_csv(path)
        assert loaded.values.dtype == np.int64
        assert np.array_equal(loaded.values, event_trace.values)

    def test_missing_file(self, tmp_path):
        with pytest.raises(ValidationError):
            load_trace_csv(tmp_path / "nope.csv")
