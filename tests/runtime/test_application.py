"""Tests for iterative applications and their execution."""

import numpy as np
import pytest

from repro.runtime.application import (
    ApplicationRunner,
    IterativeApplication,
    LoopCall,
    RepeatedBlock,
    SerialSection,
    application_from_pattern,
)
from repro.runtime.ditools import DIToolsInterposer
from repro.runtime.machine import Machine
from repro.runtime.openmp import ParallelLoop
from repro.runtime.workload import LoopWorkload
from repro.traces.address_stream import AddressSpace
from repro.util.validation import ValidationError


def simple_app(iterations=5, loops=3, work=0.01):
    space = AddressSpace()
    wl = LoopWorkload(parallel_work=work * 0.9, serial_work=work * 0.1)
    body = [LoopCall(ParallelLoop(f"loop_{i}", wl, space)) for i in range(loops)]
    return IterativeApplication("simple", body, iterations, address_space=space)


class TestApplicationStructure:
    def test_flat_body(self):
        app = simple_app(loops=4)
        assert app.calls_per_iteration == 4
        assert app.address_pattern().size == 4
        assert len(set(app.address_pattern().tolist())) == 4

    def test_nested_body_flattening(self):
        space = AddressSpace()
        wl = LoopWorkload(parallel_work=1e-3)
        inner = [LoopCall(ParallelLoop(f"in_{i}", wl, space)) for i in range(3)]
        body = [
            LoopCall(ParallelLoop("pre", wl, space)),
            RepeatedBlock(items=tuple(inner), repetitions=4),
            SerialSection(1e-4),
        ]
        app = IterativeApplication("nested", body, 2, address_space=space)
        assert app.calls_per_iteration == 1 + 3 * 4

    def test_empty_body_rejected(self):
        with pytest.raises(ValidationError):
            IterativeApplication("x", [], 3)

    def test_repeated_block_validation(self):
        with pytest.raises(ValidationError):
            RepeatedBlock(items=(), repetitions=2)

    def test_analytic_model_monotone_in_cpus(self):
        app = simple_app()
        t1 = app.analytic_iteration_time(1)
        t4 = app.analytic_iteration_time(4)
        t16 = app.analytic_iteration_time(16)
        assert t1 > t4 > t16
        assert app.analytic_speedup(4) == pytest.approx(t1 / t4)
        assert app.analytic_time(1) == pytest.approx(t1 * app.iterations)


class TestApplicationRunner:
    def test_execution_matches_analytic_time(self):
        app = simple_app(iterations=6)
        runner = ApplicationRunner(app, machine=Machine(8), cpus=4)
        result = runner.run()
        assert result.iterations == 6
        assert result.total_time == pytest.approx(app.analytic_time(4))
        assert all(c == 4 for c in result.cpus_per_iteration)

    def test_loop_address_stream_matches_pattern(self):
        app = simple_app(iterations=3, loops=4)
        runner = ApplicationRunner(app, machine=Machine(4), cpus=2)
        result = runner.run()
        expected = np.tile(app.address_pattern(), 3)
        assert np.array_equal(result.loop_addresses, expected)
        assert result.loop_timestamps.size == expected.size
        assert np.all(np.diff(result.loop_timestamps) >= 0)

    def test_interposer_sees_every_call(self):
        app = simple_app(iterations=4, loops=3)
        interposer = DIToolsInterposer()
        runner = ApplicationRunner(app, machine=Machine(4), interposer=interposer, cpus=2)
        runner.run()
        assert interposer.calls == 12
        assert interposer.addresses == list(np.tile(app.address_pattern(), 4))

    def test_override_next_iteration(self):
        app = simple_app(iterations=5)
        runner = ApplicationRunner(app, machine=Machine(8), cpus=8)
        runner.override_next_iteration(1, iterations=2)
        result = runner.run()
        assert result.cpus_per_iteration[:2] == [1, 1]
        assert set(result.cpus_per_iteration[2:]) == {8}

    def test_allocation_policy_callback(self):
        app = simple_app(iterations=6)
        policy_calls = []

        def policy(iteration, requested):
            policy_calls.append(iteration)
            return 1 if iteration % 2 == 0 else requested

        runner = ApplicationRunner(app, machine=Machine(8), cpus=4, allocation_policy=policy)
        result = runner.run()
        assert policy_calls == list(range(6))
        assert result.cpus_per_iteration == [1, 4, 1, 4, 1, 4]

    def test_machine_clamps_grant(self):
        app = simple_app(iterations=2)
        runner = ApplicationRunner(app, machine=Machine(2), cpus=16)
        result = runner.run()
        assert set(result.cpus_per_iteration) == {2}

    def test_address_trace_export(self):
        app = simple_app(iterations=2, loops=3)
        runner = ApplicationRunner(app, machine=Machine(2), cpus=1)
        result = runner.run()
        trace = result.address_trace()
        assert trace.kind == "events"
        assert len(trace) == 6

    def test_serial_sections_run_on_one_cpu(self):
        space = AddressSpace()
        wl = LoopWorkload(parallel_work=0.01)
        body = [SerialSection(0.02), LoopCall(ParallelLoop("l", wl, space))]
        app = IterativeApplication("with_serial", body, 2, address_space=space)
        runner = ApplicationRunner(app, machine=Machine(4), cpus=4)
        result = runner.run()
        assert result.total_time == pytest.approx(2 * (0.02 + wl.execution_time(4)))
        assert any(i.cpus == 1 and i.duration == pytest.approx(0.02) for i in result.timeline)


class TestApplicationFromPattern:
    def test_repeated_names_reuse_loops(self):
        app = application_from_pattern(
            "demo", ["a", "b", "a", "c"], iterations=2,
            workload=LoopWorkload(parallel_work=1e-3),
        )
        pattern = app.address_pattern()
        assert pattern[0] == pattern[2]
        assert len(set(pattern.tolist())) == 3

    def test_per_loop_workloads(self):
        heavy = LoopWorkload(parallel_work=1.0)
        light = LoopWorkload(parallel_work=0.1)
        app = application_from_pattern(
            "demo", ["big", "small"], iterations=1,
            workload=light, per_loop_workloads={"big": heavy},
        )
        loops = {l.name: l for l in app.loop_calls_per_iteration()}
        assert loops["big"].workload.parallel_work == 1.0
        assert loops["small"].workload.parallel_work == 0.1

    def test_empty_names_rejected(self):
        with pytest.raises(ValidationError):
            application_from_pattern("demo", [], iterations=1)
