"""Tests for the message-passing cost model."""

import pytest

from repro.runtime.mpi import MpiCommunicator, NetworkModel


class TestNetworkModel:
    def test_point_to_point_cost(self):
        net = NetworkModel(latency=1e-5, bandwidth=1e8)
        assert net.point_to_point(0) == pytest.approx(1e-5)
        assert net.point_to_point(1e8) == pytest.approx(1.0 + 1e-5)

    def test_invalid_bandwidth(self):
        with pytest.raises(ValueError):
            NetworkModel(bandwidth=0)


class TestMpiCommunicator:
    def test_alltoall_scales_with_ranks(self):
        small = MpiCommunicator(4)
        large = MpiCommunicator(16)
        assert large.alltoall_time(1024) > small.alltoall_time(1024)

    def test_single_rank_collectives_are_free(self):
        comm = MpiCommunicator(1)
        assert comm.alltoall_time(1024) == 0.0
        assert comm.allreduce_time(8) == 0.0
        assert comm.barrier_time() == 0.0

    def test_allreduce_uses_log_steps(self):
        net = NetworkModel(latency=1e-6, bandwidth=1e9)
        comm8 = MpiCommunicator(8, net)
        comm16 = MpiCommunicator(16, net)
        t8 = comm8.allreduce_time(8)
        t16 = comm16.allreduce_time(8)
        assert t16 / t8 == pytest.approx(4 / 3, rel=1e-6)

    def test_accounting(self):
        comm = MpiCommunicator(4)
        comm.send_time(100)
        comm.alltoall_time(10)
        assert comm.collectives == 1
        assert comm.bytes_sent > 100
