"""Tests for the simulated machine and the loop cost model."""

import pytest

from repro.runtime.machine import Allocation, Machine
from repro.runtime.workload import LoopWorkload
from repro.util.validation import ValidationError


class TestMachine:
    def test_initial_state(self):
        m = Machine(16)
        assert m.num_cpus == 16
        assert m.free_cpus == 16
        assert m.allocated_cpus == 0

    def test_allocate_and_release(self):
        m = Machine(8)
        granted = m.allocate("app", 4)
        assert granted == 4
        assert m.allocation_of("app") == 4
        assert m.free_cpus == 4
        m.release("app")
        assert m.free_cpus == 8

    def test_allocation_clamped_to_available(self):
        m = Machine(8)
        m.allocate("a", 6)
        granted = m.allocate("b", 6)
        assert granted == 2
        assert m.allocated_cpus == 8

    def test_reallocation_replaces_previous_grant(self):
        m = Machine(8)
        m.allocate("a", 6)
        granted = m.allocate("a", 2)
        assert granted == 2
        assert m.free_cpus == 6

    def test_minimum_one_cpu_granted(self):
        m = Machine(2)
        m.allocate("a", 2)
        assert m.allocate("b", 4) == 1

    def test_busy_time_and_utilization(self):
        m = Machine(4)
        m.record_busy_time("a", 10.0)
        m.record_busy_time("b", 2.0)
        assert m.busy_time("a") == 10.0
        assert m.busy_time() == 12.0
        assert m.utilization(5.0) == pytest.approx(12.0 / 20.0)
        assert m.utilization(0.0) == 0.0

    def test_invalid_arguments(self):
        with pytest.raises(ValidationError):
            Machine(0)
        m = Machine(2)
        with pytest.raises(ValidationError):
            m.allocate("", 1)
        with pytest.raises(ValidationError):
            Allocation(owner="x", cpus=0)


class TestLoopWorkload:
    def test_perfectly_parallel_loop(self):
        wl = LoopWorkload(parallel_work=8.0)
        assert wl.execution_time(1) == pytest.approx(8.0)
        assert wl.execution_time(8) == pytest.approx(1.0)
        assert wl.speedup(8) == pytest.approx(8.0)
        assert wl.efficiency(8) == pytest.approx(1.0)

    def test_serial_work_limits_speedup(self):
        wl = LoopWorkload(parallel_work=9.0, serial_work=1.0)
        assert wl.execution_time(1) == pytest.approx(10.0)
        # Amdahl with 90 % parallel fraction: S(9) = 1/(0.1 + 0.9/9) = 5
        assert wl.speedup(9) == pytest.approx(5.0)

    def test_overhead_grows_with_team(self):
        wl = LoopWorkload(parallel_work=1.0, fork_join_overhead=0.1, spawn_cost_per_thread=0.5)
        assert wl.execution_time(1) == pytest.approx(1.0)  # no overhead on one CPU
        t2 = wl.execution_time(2)
        t4 = wl.execution_time(4)
        assert t2 > 0.5
        overhead2 = t2 - 0.5
        overhead4 = t4 - 0.25
        assert overhead4 > overhead2

    def test_imbalance_penalty(self):
        balanced = LoopWorkload(parallel_work=4.0, imbalance=0.0)
        imbalanced = LoopWorkload(parallel_work=4.0, imbalance=0.5)
        assert imbalanced.execution_time(4) > balanced.execution_time(4)
        assert imbalanced.execution_time(1) == balanced.execution_time(1)

    def test_cpu_seconds_at_least_wall_time(self):
        wl = LoopWorkload(parallel_work=2.0, serial_work=0.5, fork_join_overhead=0.01)
        for cpus in (1, 2, 8):
            assert wl.cpu_seconds(cpus) >= wl.execution_time(cpus) - 1e-12

    def test_scaled(self):
        wl = LoopWorkload(parallel_work=2.0, serial_work=1.0)
        scaled = wl.scaled(0.5)
        assert scaled.parallel_work == pytest.approx(1.0)
        assert scaled.serial_work == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValidationError):
            LoopWorkload(parallel_work=-1.0)
        with pytest.raises(ValidationError):
            LoopWorkload(parallel_work=1.0, imbalance=1.5)
        wl = LoopWorkload(parallel_work=1.0)
        with pytest.raises(ValidationError):
            wl.execution_time(0)
