"""Tests for the virtual clock and the discrete-event queue."""

import pytest

from repro.runtime.clock import VirtualClock
from repro.runtime.events import EventQueue
from repro.util.validation import ValidationError


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0.0

    def test_advance(self):
        clock = VirtualClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now == pytest.approx(2.0)

    def test_advance_to(self):
        clock = VirtualClock(1.0)
        clock.advance_to(3.0)
        assert clock.now == 3.0

    def test_cannot_go_backwards(self):
        clock = VirtualClock(5.0)
        with pytest.raises(ValidationError):
            clock.advance_to(4.0)
        with pytest.raises(Exception):
            clock.advance(-1.0)

    def test_reset(self):
        clock = VirtualClock(2.0)
        clock.reset()
        assert clock.now == 0.0


class TestEventQueue:
    def test_events_run_in_time_order(self):
        queue = EventQueue()
        order = []
        queue.schedule_at(2.0, lambda: order.append("b"))
        queue.schedule_at(1.0, lambda: order.append("a"))
        queue.schedule_at(3.0, lambda: order.append("c"))
        queue.run()
        assert order == ["a", "b", "c"]
        assert queue.now == 3.0
        assert queue.processed == 3

    def test_ties_broken_by_insertion_order(self):
        queue = EventQueue()
        order = []
        queue.schedule_at(1.0, lambda: order.append(1))
        queue.schedule_at(1.0, lambda: order.append(2))
        queue.run()
        assert order == [1, 2]

    def test_schedule_in_is_relative(self):
        queue = EventQueue()
        times = []
        queue.schedule_in(0.5, lambda: times.append(queue.now))
        queue.run()
        assert times == [0.5]

    def test_cannot_schedule_in_past(self):
        queue = EventQueue()
        queue.schedule_at(1.0, lambda: None)
        queue.run()
        with pytest.raises(ValidationError):
            queue.schedule_at(0.5, lambda: None)

    def test_cancel(self):
        queue = EventQueue()
        fired = []
        event = queue.schedule_at(1.0, lambda: fired.append(1))
        queue.cancel(event)
        queue.run()
        assert fired == []
        assert queue.pending == 0

    def test_run_until(self):
        queue = EventQueue()
        fired = []
        queue.schedule_at(1.0, lambda: fired.append(1))
        queue.schedule_at(5.0, lambda: fired.append(5))
        queue.run(until=2.0)
        assert fired == [1]
        assert queue.pending == 1

    def test_events_can_schedule_more_events(self):
        queue = EventQueue()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                queue.schedule_in(1.0, lambda: chain(n + 1))

        queue.schedule_at(0.0, lambda: chain(0))
        queue.run()
        assert fired == [0, 1, 2, 3]
        assert queue.now == 3.0

    def test_max_events(self):
        queue = EventQueue()
        for i in range(10):
            queue.schedule_at(float(i), lambda: None)
        executed = queue.run(max_events=4)
        assert executed == 4
        assert queue.pending == 6
