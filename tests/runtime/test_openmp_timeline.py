"""Tests for parallel loops, the usage timeline, the sampler and thread teams."""

import numpy as np
import pytest

from repro.runtime.clock import VirtualClock
from repro.runtime.openmp import ParallelLoop
from repro.runtime.sampler import CpuUsageSampler, change_events
from repro.runtime.threads import ThreadTeam
from repro.runtime.timeline import UsageInterval, UsageTimeline
from repro.runtime.workload import LoopWorkload
from repro.traces.address_stream import AddressSpace
from repro.util.validation import ValidationError


class TestUsageTimeline:
    def test_add_and_totals(self):
        tl = UsageTimeline()
        tl.add(0.0, 1.0, 4)
        tl.add(1.0, 2.0, 1)
        assert len(tl) == 2
        assert tl.total_cpu_seconds == pytest.approx(5.0)
        assert tl.end == 2.0

    def test_zero_length_intervals_ignored(self):
        tl = UsageTimeline()
        tl.add(1.0, 1.0, 4)
        assert len(tl) == 0

    def test_usage_at(self):
        tl = UsageTimeline()
        tl.add(0.0, 2.0, 3)
        tl.add(1.0, 3.0, 2)
        assert tl.usage_at(0.5) == 3
        assert tl.usage_at(1.5) == 5
        assert tl.usage_at(2.5) == 2
        assert tl.usage_at(3.5) == 0

    def test_sample(self):
        tl = UsageTimeline()
        tl.add(0.0, 0.010, 2)
        tl.add(0.010, 0.020, 8)
        samples = tl.sample(0.001)
        assert samples.size == 20
        assert samples[0] == 2
        assert samples[15] == 8

    def test_invalid_interval(self):
        with pytest.raises(ValidationError):
            UsageInterval(1.0, 0.5, 2)
        with pytest.raises(ValidationError):
            UsageTimeline().sample(0.0)


class TestParallelLoop:
    def make_loop(self):
        wl = LoopWorkload(parallel_work=0.08, serial_work=0.01, fork_join_overhead=0.005)
        return ParallelLoop("loop_x", wl, AddressSpace())

    def test_execute_advances_clock_by_model_time(self):
        loop = self.make_loop()
        clock = VirtualClock()
        invocation = loop.execute(clock, 4)
        assert clock.now == pytest.approx(loop.execution_time(4))
        assert invocation.duration == pytest.approx(loop.execution_time(4))
        assert invocation.cpus == 4
        assert loop.invocations == 1

    def test_execute_records_fork_join_shape(self):
        loop = self.make_loop()
        clock = VirtualClock()
        tl = UsageTimeline()
        loop.execute(clock, 8, tl)
        cpus_seq = [i.cpus for i in tl.intervals]
        assert cpus_seq[0] == 1  # serial prologue
        assert cpus_seq[-1] == 8  # parallel body at full width
        assert tl.end == pytest.approx(clock.now)

    def test_single_cpu_has_no_overhead_interval(self):
        loop = self.make_loop()
        clock = VirtualClock()
        tl = UsageTimeline()
        loop.execute(clock, 1, tl)
        assert all(i.cpus == 1 for i in tl.intervals)

    def test_addresses_are_per_name(self):
        space = AddressSpace()
        wl = LoopWorkload(parallel_work=1e-3)
        a = ParallelLoop("a", wl, space)
        b = ParallelLoop("b", wl, space)
        assert a.address != b.address

    def test_empty_name_rejected(self):
        with pytest.raises(ValidationError):
            ParallelLoop("", LoopWorkload(parallel_work=1e-3))


class TestSampler:
    def test_sampler_produces_trace(self):
        tl = UsageTimeline()
        tl.add(0.0, 0.02, 4)
        sampler = CpuUsageSampler(1e-3)
        trace = sampler.sample(tl, name="demo")
        assert trace.name == "demo"
        assert len(trace) == 20
        assert set(np.unique(trace.values)) == {4.0}

    def test_change_events(self):
        values = np.array([1, 1, 2, 2, 2, 3, 1])
        indices, changed = change_events(values)
        assert indices.tolist() == [0, 2, 5, 6]
        assert changed.tolist() == [1, 2, 3, 1]

    def test_change_events_rejects_empty(self):
        with pytest.raises(ValidationError):
            change_events(np.array([]))


class TestThreadTeam:
    def test_no_ramps_for_single_thread(self):
        team = ThreadTeam(1, spawn_latency=1e-3, join_latency=1e-3)
        assert team.fork_duration == 0.0
        assert team.region_intervals(0.0, 1.0)[0].cpus == 1

    def test_ramp_shapes(self):
        team = ThreadTeam(4, spawn_latency=0.001, join_latency=0.002)
        fork = team.fork_intervals(0.0)
        assert [i.cpus for i in fork] == [1, 2, 3]
        join = team.join_intervals(10.0)
        assert [i.cpus for i in join] == [3, 2, 1]
        assert team.total_overhead == pytest.approx(3 * 0.001 + 3 * 0.002)

    def test_region_intervals_cover_body(self):
        team = ThreadTeam(3, spawn_latency=0.001, join_latency=0.001)
        intervals = team.region_intervals(0.0, 0.5)
        widths = [i.cpus for i in intervals]
        assert 3 in widths
        total = sum(i.duration for i in intervals)
        assert total == pytest.approx(0.5 + team.total_overhead)
