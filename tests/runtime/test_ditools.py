"""Tests for the DITools-like interposition layer."""

import pytest

from repro.runtime.clock import VirtualClock
from repro.runtime.ditools import DIToolsInterposer, LoopCallEvent


class TestInterposer:
    def test_handlers_receive_events(self):
        interposer = DIToolsInterposer()
        received = []
        interposer.register(received.append)
        clock = VirtualClock()
        interposer.intercept(0x400000, "loop_a", clock, cpus=4, iteration=0)
        interposer.intercept(0x400140, "loop_b", clock, cpus=4, iteration=0)
        assert [e.address for e in received] == [0x400000, 0x400140]
        assert all(isinstance(e, LoopCallEvent) for e in received)
        assert interposer.calls == 2
        assert interposer.addresses == [0x400000, 0x400140]

    def test_event_timestamp_is_virtual_time(self):
        interposer = DIToolsInterposer()
        clock = VirtualClock()
        clock.advance(1.5)
        event = interposer.intercept(0x1, "x", clock, 1, 3)
        assert event.timestamp == pytest.approx(1.5)
        assert event.iteration == 3

    def test_handler_wall_time_accounted(self):
        interposer = DIToolsInterposer()

        def slowish_handler(event):
            total = 0
            for i in range(2000):
                total += i

        interposer.register(slowish_handler)
        clock = VirtualClock()
        for _ in range(10):
            interposer.intercept(0x1, "x", clock, 1, 0)
        assert interposer.handler_wall_time > 0.0
        assert interposer.mean_cost_per_call() > 0.0

    def test_virtual_overhead_advances_clock(self):
        interposer = DIToolsInterposer(virtual_overhead_per_call=1e-3)
        clock = VirtualClock()
        interposer.intercept(0x1, "x", clock, 1, 0)
        interposer.intercept(0x2, "y", clock, 1, 0)
        assert clock.now == pytest.approx(2e-3)

    def test_unregister_and_clear(self):
        interposer = DIToolsInterposer()
        received = []
        interposer.register(received.append)
        interposer.unregister(received.append)
        interposer.intercept(0x1, "x", VirtualClock(), 1, 0)
        assert received == []
        interposer.clear()
        assert interposer.calls == 0
        assert interposer.events == []

    def test_unregister_unknown_handler_is_noop(self):
        interposer = DIToolsInterposer()
        interposer.unregister(lambda e: None)

    def test_non_callable_handler_rejected(self):
        interposer = DIToolsInterposer()
        with pytest.raises(TypeError):
            interposer.register("not callable")

    def test_zero_cost_without_handlers(self):
        interposer = DIToolsInterposer()
        interposer.intercept(0x1, "x", VirtualClock(), 1, 0)
        assert interposer.handler_wall_time == 0.0
        assert interposer.mean_cost_per_call() == 0.0
