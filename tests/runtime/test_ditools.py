"""Tests for the DITools-like interposition layer."""

import pytest

from repro.runtime.clock import VirtualClock
from repro.runtime.ditools import DIToolsInterposer, LoopCallEvent


class TestInterposer:
    def test_handlers_receive_events(self):
        interposer = DIToolsInterposer()
        received = []
        interposer.register(received.append)
        clock = VirtualClock()
        interposer.intercept(0x400000, "loop_a", clock, cpus=4, iteration=0)
        interposer.intercept(0x400140, "loop_b", clock, cpus=4, iteration=0)
        assert [e.address for e in received] == [0x400000, 0x400140]
        assert all(isinstance(e, LoopCallEvent) for e in received)
        assert interposer.calls == 2
        assert interposer.addresses == [0x400000, 0x400140]

    def test_event_timestamp_is_virtual_time(self):
        interposer = DIToolsInterposer()
        clock = VirtualClock()
        clock.advance(1.5)
        event = interposer.intercept(0x1, "x", clock, 1, 3)
        assert event.timestamp == pytest.approx(1.5)
        assert event.iteration == 3

    def test_handler_wall_time_accounted(self):
        interposer = DIToolsInterposer()

        def slowish_handler(event):
            total = 0
            for i in range(2000):
                total += i

        interposer.register(slowish_handler)
        clock = VirtualClock()
        for _ in range(10):
            interposer.intercept(0x1, "x", clock, 1, 0)
        assert interposer.handler_wall_time > 0.0
        assert interposer.mean_cost_per_call() > 0.0

    def test_virtual_overhead_advances_clock(self):
        interposer = DIToolsInterposer(virtual_overhead_per_call=1e-3)
        clock = VirtualClock()
        interposer.intercept(0x1, "x", clock, 1, 0)
        interposer.intercept(0x2, "y", clock, 1, 0)
        assert clock.now == pytest.approx(2e-3)

    def test_unregister_and_clear(self):
        interposer = DIToolsInterposer()
        received = []
        interposer.register(received.append)
        interposer.unregister(received.append)
        interposer.intercept(0x1, "x", VirtualClock(), 1, 0)
        assert received == []
        interposer.clear()
        assert interposer.calls == 0
        assert interposer.events == []

    def test_unregister_unknown_handler_is_noop(self):
        interposer = DIToolsInterposer()
        interposer.unregister(lambda e: None)

    def test_non_callable_handler_rejected(self):
        interposer = DIToolsInterposer()
        with pytest.raises(TypeError):
            interposer.register("not callable")

    def test_zero_cost_without_handlers(self):
        interposer = DIToolsInterposer()
        interposer.intercept(0x1, "x", VirtualClock(), 1, 0)
        assert interposer.handler_wall_time == 0.0
        assert interposer.mean_cost_per_call() == 0.0


class TestPoolIntegration:
    def test_interposed_application_streams_into_a_pool(self):
        from repro.service.pool import DetectorPool, PoolConfig

        pool = DetectorPool(PoolConfig(mode="event", window_size=32))
        interposer = DIToolsInterposer(pool=pool, stream_id="app-1")
        clock = VirtualClock()
        addresses = [0x100, 0x200, 0x300] * 10
        for i, address in enumerate(addresses):
            interposer.intercept(address, f"loop_{address:x}", clock, cpus=4, iteration=i)

        assert "app-1" in pool
        assert pool.current_period("app-1") == 3
        assert pool.stream_stats("app-1").samples == len(addresses)
        events = interposer.period_events
        assert events and all(e.stream_id == "app-1" for e in events)
        assert {e.period for e in events} == {3}
        # Pool work is DPD work: it must show up in the overhead account.
        assert interposer.handler_wall_time > 0.0

    def test_attach_pool_after_construction(self):
        from repro.service.pool import DetectorPool, PoolConfig

        interposer = DIToolsInterposer()
        pool = DetectorPool(PoolConfig(mode="event", window_size=32))
        interposer.attach_pool(pool, "late")
        clock = VirtualClock()
        for i in range(12):
            interposer.intercept(0x10 + (i % 2), "loop", clock, cpus=1, iteration=i)
        assert pool.current_period("late") == 2
        assert interposer.stream_id == "late"

    def test_two_applications_share_one_pool(self):
        from repro.service.pool import DetectorPool, PoolConfig

        pool = DetectorPool(PoolConfig(mode="event", window_size=32))
        a = DIToolsInterposer(pool=pool, stream_id="app-a")
        b = DIToolsInterposer(pool=pool, stream_id="app-b")
        clock = VirtualClock()
        for i in range(24):
            a.intercept(0x1 + (i % 2), "loop", clock, cpus=1, iteration=i)
            b.intercept(0x9 + (i % 4), "loop", clock, cpus=1, iteration=i)
        assert pool.current_period("app-a") == 2
        assert pool.current_period("app-b") == 4
        assert len(pool) == 2

    def test_clear_forgets_period_events(self):
        from repro.service.pool import DetectorPool, PoolConfig

        pool = DetectorPool(PoolConfig(mode="event", window_size=32))
        interposer = DIToolsInterposer(pool=pool)
        clock = VirtualClock()
        for i in range(18):
            interposer.intercept(i % 3, "loop", clock, cpus=1, iteration=i)
        assert interposer.period_events
        interposer.clear()
        assert interposer.period_events == []
