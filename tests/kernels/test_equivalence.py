"""Bit-for-bit equivalence of every kernel backend with the NumPy reference.

The registry's contract is that switching backends can never change
detector behaviour — float state included.  These tests drive each
non-reference backend and the NumPy reference with the same inputs and
require ``np.array_equal`` (no tolerance), including adversarial floats:
denormals, exact ties in the minima selection, huge magnitudes and
non-finite entries.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import kernels
from repro.core.minima import select_period
from repro.kernels import numpy_backend

TINY = np.finfo(np.float64).tiny  # smallest normal; /8 gives denormals


def _other_backends():
    params = [pytest.param("python")]
    params.append(
        pytest.param(
            "numba",
            marks=pytest.mark.skipif(
                not kernels.numba_available(), reason="numba not installed"
            ),
        )
    )
    return params


@pytest.fixture(params=_other_backends())
def backend(request):
    module = kernels._load(request.param)
    if request.param == "numba":
        previous = kernels.set_backend("numba")
        kernels.warmup()
        kernels.set_backend(previous)
    return module


adversarial_float = st.one_of(
    st.just(0.0),
    st.just(TINY / 8),  # denormal
    st.just(TINY),
    st.just(1e300),
    st.sampled_from([0.25, 0.5, 1.0, 2.0]),  # exact-tie building blocks
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
)


class TestMagnitudeKernel:
    @settings(
        max_examples=150,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(data=st.data())
    def test_matches_numpy_reference(self, backend, data):
        window = data.draw(st.integers(min_value=2, max_value=24), label="window")
        top = data.draw(st.integers(min_value=1, max_value=window), label="top")
        length = data.draw(st.integers(min_value=1, max_value=window), label="length")
        streams = data.draw(st.integers(min_value=1, max_value=4), label="streams")
        ext = np.array(
            data.draw(
                st.lists(
                    st.lists(
                        adversarial_float,
                        min_size=window + length,
                        max_size=window + length,
                    ),
                    min_size=streams,
                    max_size=streams,
                )
            )
        )
        sums = np.array(
            data.draw(
                st.lists(
                    st.lists(adversarial_float, min_size=top + 1, max_size=top + 1),
                    min_size=streams,
                    max_size=streams,
                )
            )
        )
        expected = sums.copy()
        numpy_backend.magnitude_advance_sums(expected, ext, window, length)
        got = sums.copy()
        backend.magnitude_advance_sums(got, ext, window, length)
        np.testing.assert_array_equal(got, expected)


class TestEventKernel:
    @settings(
        max_examples=150,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(data=st.data())
    def test_matches_numpy_reference(self, backend, data):
        window = data.draw(st.integers(min_value=1, max_value=10), label="window")
        top = data.draw(st.integers(min_value=1, max_value=window), label="top")
        fill = data.draw(st.integers(min_value=0, max_value=window), label="fill")
        head = data.draw(st.integers(min_value=0, max_value=window - 1), label="head")
        streams = data.draw(st.integers(min_value=1, max_value=3), label="streams")
        event = st.integers(min_value=0, max_value=3)
        buffers = np.array(
            data.draw(
                st.lists(
                    st.lists(event, min_size=window, max_size=window),
                    min_size=streams,
                    max_size=streams,
                )
            ),
            dtype=np.int64,
        )
        mismatches = np.zeros((streams, top + 1), dtype=np.int64)
        column = np.array(
            data.draw(st.lists(event, min_size=streams, max_size=streams)),
            dtype=np.int64,
        )
        expected = mismatches.copy()
        numpy_backend.event_step_mismatches(
            buffers, expected, column, head, fill, window
        )
        got = mismatches.copy()
        backend.event_step_mismatches(buffers, got, column, head, fill, window)
        np.testing.assert_array_equal(got, expected)


class TestSelectionKernel:
    @settings(
        max_examples=250,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(data=st.data())
    def test_matches_numpy_reference_and_scalar_oracle(self, backend, data):
        streams = data.draw(st.integers(min_value=1, max_value=4), label="streams")
        lags = data.draw(st.integers(min_value=1, max_value=30), label="lags")
        # NaN/inf padding plus exact repeats: plateaus, ties between
        # minima, and empty (all-NaN) rows.
        value = st.one_of(
            st.just(np.nan),
            st.just(np.inf),
            adversarial_float.map(abs),
        )
        P = np.array(
            data.draw(
                st.lists(
                    st.lists(value, min_size=lags, max_size=lags),
                    min_size=streams,
                    max_size=streams,
                )
            )
        )
        min_lag = data.draw(st.integers(min_value=1, max_value=6), label="min_lag")
        min_depth = data.draw(
            st.floats(min_value=0.0, max_value=1.0), label="min_depth"
        )
        tolerance = data.draw(
            st.floats(min_value=0.0, max_value=0.5), label="tolerance"
        )
        expected = numpy_backend.select_periods_batch_impl(
            P, min_lag, min_depth, tolerance
        )
        got = backend.select_periods_batch_impl(P, min_lag, min_depth, tolerance)
        for g, e in zip(got, expected):
            np.testing.assert_array_equal(g, e)
        # And both must equal the scalar per-row oracle, bit for bit.
        for s in range(streams):
            candidate = select_period(
                P[s],
                min_lag=min_lag,
                min_depth=min_depth,
                harmonic_tolerance=tolerance,
            )
            if candidate is None:
                assert got[0][s] == 0
            else:
                assert got[0][s] == candidate.lag
                assert got[1][s] == candidate.distance
                assert got[2][s] == candidate.depth

    def test_exact_tie_breaks_toward_the_smaller_lag(self, backend):
        # Two equally deep non-harmonic minima (lags 4 and 7): the
        # smaller lag must win in every backend.
        profile = np.full(12, 2.0)
        profile[4] = profile[7] = 0.5
        profile[0] = np.nan
        P = np.stack([profile, profile])
        lags, _, _ = backend.select_periods_batch_impl(P, 2, 0.1, 0.15)
        assert lags.tolist() == [4, 4]

    def test_denormal_profiles_do_not_flip_the_depth_gate(self, backend):
        # Depths computed from denormal means must agree exactly with
        # the reference (the gate comparison is >=, so one ulp matters).
        P = np.array([[np.nan, TINY / 8, TINY / 2, TINY / 8, TINY, TINY / 4]])
        expected = numpy_backend.select_periods_batch_impl(P, 1, 0.25, 0.15)
        got = backend.select_periods_batch_impl(P, 1, 0.25, 0.15)
        for g, e in zip(got, expected):
            np.testing.assert_array_equal(g, e)
