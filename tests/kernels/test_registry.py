"""Backend registry: selection, fallback, warmup and stats surfacing."""

import warnings

import numpy as np
import pytest

from repro import kernels
from repro.service.pool import DetectorPool, PoolConfig
from repro.service.sharding import ShardedDetectorPool, ShardingConfig
from repro.traces.synthetic import noisy_periodic_signal


@pytest.fixture
def restore_backend():
    previous = kernels.backend_name()
    yield
    kernels.set_backend(previous)


class TestSelection:
    def test_default_request_is_auto(self, monkeypatch):
        monkeypatch.delenv(kernels.ENV_VAR, raising=False)
        assert kernels.requested_backend() == "auto"

    def test_invalid_env_value_warns_and_falls_back_to_auto(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_VAR, "fortran")
        with pytest.warns(RuntimeWarning, match="fortran"):
            assert kernels.requested_backend() == "auto"

    def test_auto_resolves_numba_iff_available(self, restore_backend):
        kernels.set_backend("auto")
        expected = "numba" if kernels.numba_available() else "numpy"
        assert kernels.backend_name() == expected

    @pytest.mark.parametrize("name", ["numpy", "python"])
    def test_set_backend_roundtrip(self, name, restore_backend):
        previous = kernels.set_backend(name)
        assert kernels.backend_name() == name
        assert kernels.set_backend(previous) == name

    def test_set_backend_rejects_unknown_names(self):
        with pytest.raises(ValueError):
            kernels.set_backend("fortran")

    @pytest.mark.skipif(kernels.numba_available(), reason="numba is installed")
    def test_set_backend_numba_raises_without_numba(self):
        with pytest.raises(RuntimeError):
            kernels.set_backend("numba")

    @pytest.mark.skipif(kernels.numba_available(), reason="numba is installed")
    def test_env_requested_numba_warns_and_runs_on_numpy(
        self, monkeypatch, restore_backend
    ):
        # The env-var path must degrade, not fail: importing repro on a
        # machine without numba stays silent and fully functional.
        monkeypatch.setenv(kernels.ENV_VAR, "numba")
        kernels._active = None
        kernels._active_name = None
        with pytest.warns(RuntimeWarning, match="falling back"):
            assert kernels.backend_name() == "numpy"

    def test_every_backend_module_exports_the_kernel_surface(self, kernel_backend):
        module = kernels._resolve()
        for name in kernels.KERNEL_NAMES:
            assert callable(getattr(module, name)), name


class TestWarmup:
    def test_warmup_returns_active_backend_and_is_idempotent(self, kernel_backend):
        assert kernels.warmup() == kernel_backend
        assert kernels.warmup() == kernel_backend

    def test_pool_constructor_warms_up_and_reports_backend(self, kernel_backend):
        pool = DetectorPool(PoolConfig(mode="event", window_size=32))
        assert pool.stats().kernel_backend == kernel_backend

    def test_sharded_stats_merge_the_worker_backend(self, kernel_backend):
        config = PoolConfig(mode="event", window_size=32)
        with ShardedDetectorPool(config, ShardingConfig(workers=2)) as sharded:
            sharded.ingest("app", [1, 2, 3] * 8)
            assert sharded.stats().kernel_backend == kernel_backend

    def test_fresh_worker_first_and_second_ingest_are_identical(self, kernel_backend):
        # The warmup contract: no first-request JIT (or any other
        # one-time setup) may change what a fresh worker returns.  The
        # same trace fed to a brand-new stream right after spawn and to
        # a second stream afterwards must produce identical events.
        trace = noisy_periodic_signal(5, 240, noise_std=0.05, seed=9)
        config = PoolConfig(mode="magnitude", window_size=32)
        with ShardedDetectorPool(config, ShardingConfig(workers=1)) as sharded:
            first = sharded.ingest("a", trace)
            second = sharded.ingest("b", trace)
        strip = [(e.index, e.period, e.confidence, e.new_detection, e.seq)
                 for e in first]
        assert strip == [
            (e.index, e.period, e.confidence, e.new_detection, e.seq) for e in second
        ]
        assert len(strip) > 0

    def test_warmup_never_warns_on_supported_requests(self, kernel_backend):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            kernels.warmup()


class TestDispatch:
    def test_module_level_dispatch_matches_direct_backend_call(self, kernel_backend):
        P = np.array([[np.nan, 3.0, 2.5, 1.0, 0.1, 1.2, 2.0, 0.4]])
        via_registry = kernels.select_periods_batch_impl(P, 1, 0.25, 0.15)
        direct = kernels._resolve().select_periods_batch_impl(P, 1, 0.25, 0.15)
        for a, b in zip(via_registry, direct):
            np.testing.assert_array_equal(a, b)
