"""Tests for period confidence scoring."""

import numpy as np
import pytest

from repro.core.confidence import evaluate_confidence, match_ratio
from repro.traces.synthetic import noisy_periodic_signal, periodic_signal
from repro.util.validation import ValidationError


class TestMatchRatio:
    def test_exact_periodic_stream(self):
        stream = np.tile([1, 2, 3], 10)
        assert match_ratio(stream, 3) == 1.0

    def test_partial_match(self):
        stream = np.tile([1, 2, 3], 10)
        stream[10] = 99
        ratio = match_ratio(stream, 3)
        assert 0.8 < ratio < 1.0

    def test_requires_window_longer_than_period(self):
        with pytest.raises(ValidationError):
            match_ratio([1, 2, 3], 3)


class TestEvaluateConfidence:
    def test_exact_period_scores_high(self):
        window = periodic_signal(5, 60, seed=0)
        conf = evaluate_confidence(window, 5)
        assert conf.depth == pytest.approx(1.0, abs=1e-6)
        assert conf.repetitions == 12
        assert conf.score > 0.8

    def test_wrong_period_scores_low(self):
        window = periodic_signal(5, 60, seed=0)
        conf = evaluate_confidence(window, 7)
        assert conf.score < 0.5

    def test_noise_reduces_but_keeps_confidence(self):
        clean = evaluate_confidence(periodic_signal(6, 72, seed=1), 6)
        noisy = evaluate_confidence(noisy_periodic_signal(6, 72, noise_std=0.1, seed=1), 6)
        assert noisy.score < clean.score
        assert noisy.score > 0.3

    def test_exact_mode_uses_match_ratio(self):
        stream = np.tile([10, 20, 30, 40], 10)
        conf = evaluate_confidence(stream, 4, exact=True)
        assert conf.depth == 1.0
        assert conf.coverage == 1.0

    def test_few_repetitions_lower_score(self):
        window_many = periodic_signal(4, 40, seed=2)
        window_few = periodic_signal(4, 8, seed=2)
        many = evaluate_confidence(window_many, 4)
        few = evaluate_confidence(window_few, 4)
        assert few.score < many.score

    def test_invalid_period(self):
        with pytest.raises(ValidationError):
            evaluate_confidence([1.0, 2.0, 3.0], 3)
