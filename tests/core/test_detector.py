"""Tests for the streaming magnitude detector (equation 1)."""

import numpy as np
import pytest

from repro.core.detector import DetectionResult, DetectorConfig, DynamicPeriodicityDetector
from repro.core.window import AdaptiveWindowPolicy
from repro.traces.synthetic import noisy_periodic_signal, periodic_signal
from repro.util.validation import ValidationError


class TestDetectorConfig:
    def test_defaults(self):
        cfg = DetectorConfig()
        assert cfg.effective_max_lag == cfg.window_size - 1

    def test_max_lag_must_fit_window(self):
        with pytest.raises(ValidationError):
            DetectorConfig(window_size=32, max_lag=32)

    def test_min_depth_range(self):
        with pytest.raises(ValidationError):
            DetectorConfig(min_depth=1.5)

    def test_config_and_kwargs_exclusive(self):
        with pytest.raises(ValidationError):
            DynamicPeriodicityDetector(DetectorConfig(), window_size=64)


class TestBasicDetection:
    def test_detects_exact_period(self):
        det = DynamicPeriodicityDetector(DetectorConfig(window_size=32))
        stream = np.tile([0.0, 1.0, 2.0, 3.0], 20)
        det.process(stream)
        assert det.current_period == 4

    def test_detects_period_with_noise(self):
        det = DynamicPeriodicityDetector(DetectorConfig(window_size=64, min_depth=0.2))
        stream = noisy_periodic_signal(7, 400, noise_std=0.05, seed=1)
        det.process(stream)
        assert det.current_period == 7

    def test_no_detection_on_white_noise(self, rng):
        det = DynamicPeriodicityDetector(DetectorConfig(window_size=64, min_depth=0.5))
        det.process(rng.normal(size=300))
        assert det.current_period is None

    def test_no_detection_before_enough_samples(self):
        det = DynamicPeriodicityDetector(DetectorConfig(window_size=32, min_repetitions=2))
        pattern = [0.0, 5.0, 1.0, 7.0, 2.0, 9.0]
        results = [det.update(v) for v in pattern]  # only one period seen
        assert all(r.period is None for r in results)

    def test_results_carry_increasing_indices(self):
        det = DynamicPeriodicityDetector(DetectorConfig(window_size=16))
        results = det.process(np.arange(10.0))
        assert [r.index for r in results] == list(range(10))
        assert all(isinstance(r, DetectionResult) for r in results)


class TestPeriodStartsAndSegmentation:
    def test_period_starts_are_period_apart(self):
        det = DynamicPeriodicityDetector(DetectorConfig(window_size=32))
        stream = periodic_signal(5, 200, seed=2)
        results = det.process(stream)
        starts = [r.index for r in results if r.is_period_start]
        assert len(starts) > 10
        diffs = np.diff(starts)
        assert np.all(diffs == 5)

    def test_new_detection_flag_set_once_per_lock(self):
        det = DynamicPeriodicityDetector(DetectorConfig(window_size=32))
        stream = periodic_signal(4, 120, seed=3)
        results = det.process(stream)
        new_flags = [r.index for r in results if r.new_detection]
        assert len(new_flags) >= 1
        # A stable stream must not cause repeated re-locks of the same period.
        assert len(new_flags) <= 3


class TestLockLossAndSwitch:
    def test_lock_dropped_on_aperiodic_tail(self, rng):
        det = DynamicPeriodicityDetector(
            DetectorConfig(window_size=32, min_depth=0.4, loss_patience=4)
        )
        stream = np.concatenate([periodic_signal(4, 100, seed=1), rng.normal(size=200) * 10])
        det.process(stream)
        assert det.current_period is None

    def test_period_switch_is_detected(self):
        det = DynamicPeriodicityDetector(DetectorConfig(window_size=48, min_depth=0.3))
        first = periodic_signal(4, 200, seed=5)
        second = periodic_signal(7, 400, seed=6)
        det.process(np.concatenate([first, second]))
        assert det.current_period == 7
        assert 4 in det.detected_periods
        assert 7 in det.detected_periods


class TestWindowManagement:
    def test_set_window_size_keeps_detection_working(self):
        det = DynamicPeriodicityDetector(DetectorConfig(window_size=128))
        det.process(periodic_signal(6, 100, seed=7))
        det.set_window_size(32)
        assert det.window_size == 32
        det.process(periodic_signal(6, 100, seed=7))
        assert det.current_period == 6

    def test_adaptive_window_shrinks_after_lock(self):
        policy = AdaptiveWindowPolicy(initial_size=128, min_size=8, max_size=128, periods_to_keep=3)
        det = DynamicPeriodicityDetector(
            DetectorConfig(window_size=128, adaptive_window=policy)
        )
        det.process(periodic_signal(5, 300, seed=8))
        assert det.current_period == 5
        assert det.window_size == 15

    def test_incremental_profile_matches_batch(self, rng):
        det = DynamicPeriodicityDetector(DetectorConfig(window_size=32, refresh_interval=10_000))
        stream = rng.normal(size=200)
        det.process(stream)
        incremental = det._incremental_profile()
        batch = det.distance_profile()
        mask = np.isfinite(batch)
        assert np.allclose(incremental[mask], batch[mask], atol=1e-9)

    def test_reset(self):
        det = DynamicPeriodicityDetector(DetectorConfig(window_size=32))
        det.process(periodic_signal(4, 100, seed=9))
        det.reset()
        assert det.current_period is None
        assert det.samples_seen == 0
