"""Tests for the equation (1) and (2) distance metrics."""

import numpy as np
import pytest

from repro.core.distance import (
    amdf_at_lag,
    amdf_profile,
    event_distance_at_lag,
    event_distance_profile,
    matching_lags,
    normalized_amdf_profile,
)
from repro.util.validation import ValidationError


class TestAmdfAtLag:
    def test_zero_for_exact_period(self):
        window = np.tile([1.0, 5.0, 2.0, 7.0], 6)
        assert amdf_at_lag(window, 4) == 0.0
        assert amdf_at_lag(window, 8) == 0.0

    def test_positive_for_wrong_lag(self):
        window = np.tile([1.0, 5.0, 2.0, 7.0], 6)
        assert amdf_at_lag(window, 3) > 0.0

    def test_matches_direct_formula(self, rng):
        window = rng.normal(size=50)
        lag = 7
        expected = np.mean(np.abs(window[lag:] - window[:-lag]))
        assert amdf_at_lag(window, lag) == pytest.approx(expected)

    def test_lag_bounds(self):
        window = np.arange(10.0)
        with pytest.raises(ValidationError):
            amdf_at_lag(window, 0)
        with pytest.raises(ValidationError):
            amdf_at_lag(window, 10)

    def test_rejects_bad_window(self):
        with pytest.raises(ValidationError):
            amdf_at_lag([], 1)
        with pytest.raises(ValidationError):
            amdf_at_lag(np.zeros((3, 3)), 1)


class TestAmdfProfile:
    def test_profile_indexed_by_lag(self):
        window = np.tile([0.0, 1.0, 2.0], 8)
        profile = amdf_profile(window, 9)
        assert profile.size == 10
        assert np.isnan(profile[0])
        assert profile[3] == 0.0
        assert profile[6] == 0.0
        assert profile[2] > 0.0

    def test_profile_matches_pointwise(self, rng):
        window = rng.normal(size=40)
        profile = amdf_profile(window, 12)
        for lag in range(1, 13):
            assert profile[lag] == pytest.approx(amdf_at_lag(window, lag))

    def test_max_lag_clamped_to_window(self):
        window = np.arange(8.0)
        profile = amdf_profile(window, 100)
        assert profile.size == 8

    def test_min_lag_greater_than_max_rejected(self):
        with pytest.raises(ValidationError):
            amdf_profile(np.arange(10.0), 3, min_lag=5)

    def test_minimum_at_true_period_of_noisy_signal(self, rng):
        pattern = rng.normal(size=10)
        window = np.tile(pattern, 8) + rng.normal(0, 0.01, size=80)
        profile = amdf_profile(window, 25)
        finite = np.nan_to_num(profile, nan=np.inf)
        assert int(np.argmin(finite)) in (10, 20)


class TestNormalizedProfile:
    def test_mean_of_finite_values_is_one(self, rng):
        window = rng.normal(size=64)
        profile = normalized_amdf_profile(window, 30)
        finite = profile[np.isfinite(profile)]
        assert finite.mean() == pytest.approx(1.0)

    def test_constant_signal(self):
        profile = normalized_amdf_profile(np.full(20, 3.0), 10)
        finite = profile[np.isfinite(profile)]
        assert np.all(finite == 0.0)


class TestEventDistance:
    def test_zero_only_for_exact_match(self):
        window = np.tile([10, 20, 30], 6)
        assert event_distance_at_lag(window, 3) == 0
        assert event_distance_at_lag(window, 6) == 0
        assert event_distance_at_lag(window, 2) == 1
        assert event_distance_at_lag(window, 4) == 1

    def test_profile_values_are_binary(self):
        window = np.tile([1, 2, 3, 4], 5)
        profile = event_distance_profile(window, 10)
        evaluated = profile[1:]
        assert set(np.unique(evaluated)).issubset({0, 1})
        assert profile[0] == -1

    def test_single_sample_difference_breaks_match(self):
        window = np.tile([1, 2, 3], 6).astype(np.int64)
        window[10] = 99
        assert event_distance_at_lag(window, 3) == 1


class TestMatchingLags:
    def test_exact_periodic_stream(self):
        window = np.tile([7, 8, 9, 10], 8)
        lags = matching_lags(window, 16)
        assert lags[0] == 4
        assert all(lag % 4 == 0 for lag in lags)

    def test_repetition_requirement(self):
        window = np.tile(np.arange(10), 2)  # exactly 2 repetitions
        assert 10 in matching_lags(window, min_repetitions=2)
        assert 10 not in matching_lags(window, min_repetitions=3)

    def test_aperiodic_stream_has_no_matches(self):
        window = np.arange(50)
        assert matching_lags(window) == []


class TestAmdfPairSumsBatch:
    def test_rows_match_scalar_bitwise(self):
        from repro.core.distance import amdf_pair_sums, amdf_pair_sums_batch

        rng = np.random.default_rng(3)
        for n, max_lag in ((64, 63), (64, 10), (7, 3), (2, 1)):
            windows = rng.normal(size=(9, n)) * 1e4
            batch = amdf_pair_sums_batch(windows, max_lag)
            assert batch.shape == (9, max_lag + 1)
            for row in range(9):
                assert np.array_equal(batch[row], amdf_pair_sums(windows[row], max_lag))

    def test_rejects_bad_shapes(self):
        from repro.core.distance import amdf_pair_sums_batch
        from repro.util.validation import ValidationError

        with pytest.raises(ValidationError):
            amdf_pair_sums_batch(np.zeros(8), 4)
        with pytest.raises(ValidationError):
            amdf_pair_sums_batch(np.zeros((0, 8)), 4)
