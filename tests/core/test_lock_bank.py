"""LockTrackerBank: bit-for-bit equivalence with N scalar LockTrackers.

The bank's ``apply_batch`` is the whole-array lift of
``LockTracker.apply``; these tests drive both through random candidate /
gate sequences (hypothesis) and assert that every observable — the
array state, the returned new-detection masks, the period-start masks
and the snapshots — is identical to running the scalar state machine
per stream.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.engine import LockTracker, LockTrackerBank
from repro.core.minima import PeriodCandidate
from repro.util.validation import ValidationError

# One evaluation outcome per stream: no candidate, or (lag, depth, gate).
_outcome = st.one_of(
    st.none(),
    st.tuples(
        st.integers(min_value=1, max_value=6),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False, width=64),
        st.booleans(),
    ),
)


def _apply_scalar(trackers, outcomes, index):
    """Drive the scalar oracle; returns the new-detection mask."""
    changed = []
    for tracker, outcome in zip(trackers, outcomes):
        if outcome is None or not outcome[2]:
            candidate = None
        else:
            candidate = PeriodCandidate(lag=outcome[0], distance=0.0, depth=outcome[1])
        changed.append(tracker.apply(candidate, index))
    return changed


def _apply_bank(bank, outcomes, index):
    streams = len(outcomes)
    lags = np.zeros(streams, dtype=np.int64)
    depths = np.zeros(streams, dtype=np.float64)
    gate = np.zeros(streams, dtype=bool)
    for pos, outcome in enumerate(outcomes):
        if outcome is not None:
            lags[pos] = outcome[0]
            depths[pos] = outcome[1]
            gate[pos] = outcome[2]
    return bank.apply_batch(lags, depths, gate, index)


def _assert_bank_matches(bank, trackers, context):
    for pos, tracker in enumerate(trackers):
        assert bank.current_period(pos) == tracker.period, context
        assert bank.snapshot_stream(pos) == tracker.snapshot(), context


class TestApplyBatchEquivalence:
    # kernel_backend is stateless to swap, so sharing it across
    # hypothesis examples is sound (see test_minima_batch).
    @settings(
        max_examples=200,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        steps=st.lists(st.lists(_outcome, min_size=3, max_size=3), min_size=1, max_size=40),
        loss_patience=st.integers(min_value=1, max_value=4),
    )
    def test_random_sequences_match_scalar_trackers(
        self, kernel_backend, steps, loss_patience
    ):
        streams = 3
        trackers = [LockTracker(loss_patience) for _ in range(streams)]
        bank = LockTrackerBank(streams, loss_patience)
        for index, outcomes in enumerate(steps):
            expected_changed = _apply_scalar(trackers, outcomes, index)
            changed = _apply_bank(bank, outcomes, index)
            assert changed.tolist() == expected_changed, index
            starts = bank.is_period_start_mask(index)
            assert starts.tolist() == [t.is_period_start(index) for t in trackers], index
            _assert_bank_matches(bank, trackers, index)

    @settings(max_examples=60, deadline=None)
    @given(
        steps=st.lists(st.lists(_outcome, min_size=2, max_size=2), min_size=2, max_size=24),
        loss_patience=st.integers(min_value=1, max_value=3),
        cut=st.integers(min_value=1, max_value=23),
    )
    def test_snapshot_roundtrip_resumes_identically(self, steps, loss_patience, cut):
        """Bank -> scalar snapshot -> fresh bank mid-sequence: same tail."""
        cut = min(cut, len(steps) - 1)
        streams = 2
        trackers = [LockTracker(loss_patience) for _ in range(streams)]
        bank = LockTrackerBank(streams, loss_patience)
        for index, outcomes in enumerate(steps[:cut]):
            _apply_scalar(trackers, outcomes, index)
            _apply_bank(bank, outcomes, index)
        resumed = LockTrackerBank(streams, loss_patience)
        for pos in range(streams):
            resumed.restore_stream(pos, bank.snapshot_stream(pos))
        for index, outcomes in enumerate(steps[cut:], start=cut):
            expected_changed = _apply_scalar(trackers, outcomes, index)
            changed = _apply_bank(resumed, outcomes, index)
            assert changed.tolist() == expected_changed, index
            _assert_bank_matches(resumed, trackers, index)


class TestPeriodStartMatrix:
    @settings(max_examples=60, deadline=None)
    @given(
        steps=st.lists(st.lists(_outcome, min_size=2, max_size=2), min_size=1, max_size=16),
        span=st.integers(min_value=1, max_value=12),
    )
    def test_matrix_rows_equal_per_index_masks(self, steps, span):
        bank = LockTrackerBank(2, loss_patience=2)
        for index, outcomes in enumerate(steps):
            _apply_bank(bank, outcomes, index)
        start = len(steps)
        matrix = bank.period_start_matrix(start, span)
        assert matrix.shape == (span, 2)
        for t in range(span):
            assert matrix[t].tolist() == bank.is_period_start_mask(start + t).tolist()


class TestConstruction:
    def test_rejects_empty_bank(self):
        with pytest.raises(ValidationError):
            LockTrackerBank(0, loss_patience=2)

    def test_detected_counts_accumulate_per_stream(self):
        bank = LockTrackerBank(2, loss_patience=8)
        lags = np.array([3, 0])
        depths = np.array([0.9, 0.0])
        gate = np.array([True, True])
        bank.apply_batch(lags, depths, gate, 0)
        bank.apply_batch(np.array([5, 0]), depths, gate, 1)
        bank.apply_batch(lags, depths, gate, 2)
        assert bank.detected[0] == {3: 2, 5: 1}
        assert bank.detected[1] == {}


class TestRestoreLossPatience:
    def test_restore_honours_snapshot_loss_patience(self):
        # The scalar tracker restores loss_patience from the snapshot;
        # the bank must too, even when it differs from the bank default.
        donor = LockTracker(5)
        donor.apply(PeriodCandidate(lag=3, distance=0.0, depth=0.9), 0)
        bank = LockTrackerBank(2, loss_patience=2)
        bank.restore_stream(0, donor.snapshot())
        no_candidate = np.zeros(2, dtype=np.int64)
        depths = np.zeros(2, dtype=np.float64)
        for index in range(1, 5):
            donor.apply(None, index)
            bank.apply_batch(no_candidate, depths, None, index)
            assert bank.snapshot_stream(0) == donor.snapshot(), index
        assert bank.current_period(0) == 3  # patience 5 outlives 4 misses
        donor.apply(None, 5)
        bank.apply_batch(no_candidate, depths, None, 5)
        assert bank.current_period(0) is None
        assert bank.snapshot_stream(0) == donor.snapshot()
