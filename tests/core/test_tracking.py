"""Tests for the period-phase tracker."""

import numpy as np
import pytest

from repro.core.detector import DetectionResult, DetectorConfig, DynamicPeriodicityDetector
from repro.core.events import EventDetectorConfig, EventPeriodicityDetector
from repro.core.tracking import PeriodPhase, PeriodTracker
from repro.traces.synthetic import periodic_signal


def fake_results(periods):
    """Build a DetectionResult sequence with the given per-sample periods."""
    return [
        DetectionResult(index=i, period=p, is_period_start=False, new_detection=False, confidence=1.0)
        for i, p in enumerate(periods)
    ]


class TestPeriodTracker:
    def test_single_phase(self):
        tracker = PeriodTracker()
        tracker.observe_all(fake_results([None, None, 4, 4, 4, 4]))
        phases = tracker.finalize()
        assert [p.period for p in phases] == [None, 4]
        assert phases[0].length == 2
        assert phases[1].length == 4

    def test_phase_switch(self):
        tracker = PeriodTracker()
        tracker.observe_all(fake_results([3] * 5 + [7] * 5))
        phases = tracker.finalize()
        assert [(p.period, p.length) for p in phases] == [(3, 5), (7, 5)]

    def test_out_of_order_rejected(self):
        tracker = PeriodTracker()
        tracker.observe(fake_results([3])[0])
        with pytest.raises(ValueError):
            tracker.observe(DetectionResult(index=5, period=3, is_period_start=False, new_detection=False, confidence=1.0))

    def test_stability_and_dominant_period(self):
        tracker = PeriodTracker()
        tracker.observe_all(fake_results([None] * 5 + [4] * 10 + [9] * 5))
        tracker.finalize()
        assert tracker.stability() == pytest.approx(15 / 20)
        assert tracker.dominant_period() == 4
        assert len(tracker.periodic_phases()) == 2

    def test_empty_tracker(self):
        tracker = PeriodTracker()
        assert tracker.finalize() == []
        assert tracker.stability() == 0.0
        assert tracker.dominant_period() is None

    def test_phase_iterations(self):
        phase = PeriodPhase(period=5, start=0, end=50, period_starts=10)
        assert phase.iterations == pytest.approx(10.0)
        searching = PeriodPhase(period=None, start=0, end=10, period_starts=0)
        assert searching.iterations == 0.0


class TestTrackerWithRealDetectors:
    def test_tracks_magnitude_detector_phases(self):
        stream = np.concatenate([periodic_signal(4, 200, seed=1), periodic_signal(9, 300, seed=2)])
        detector = DynamicPeriodicityDetector(DetectorConfig(window_size=64, min_depth=0.3))
        tracker = PeriodTracker().observe_all(detector.process(stream))
        phases = tracker.finalize()
        locked_periods = {p.period for p in phases if p.period}
        assert 4 in locked_periods
        assert 9 in locked_periods
        assert tracker.dominant_period() in (4, 9)

    def test_tracks_event_detector_period_starts(self):
        detector = EventPeriodicityDetector(EventDetectorConfig(window_size=32))
        results = detector.process(np.tile([1, 2, 3, 4, 5], 30))
        tracker = PeriodTracker().observe_all(results)
        phases = tracker.finalize()
        locked = [p for p in phases if p.period == 5]
        assert locked
        assert locked[-1].period_starts >= 20
