"""Tests for the C-like DPD interface (Table 1)."""

import pytest

from repro.core import api
from repro.core.api import DPD, DPDInterface, DPDWindowSize, get_global_dpd, reset_global_dpd


class TestDPDInterface:
    def test_event_mode_returns_period_at_starts(self):
        dpd = DPDInterface(window_size=32)
        stream = [0x1000, 0x2000, 0x3000] * 20
        returns = [dpd.dpd(v) for v in stream]
        nonzero = {r for r in returns if r}
        assert nonzero == {3}
        assert dpd.current_period == 3
        assert dpd.detected_periods == [3]

    def test_returns_zero_before_detection(self):
        dpd = DPDInterface(window_size=32)
        assert dpd.dpd(0x1000) == 0
        assert dpd.dpd(0x2000) == 0

    def test_magnitude_mode(self):
        dpd = DPDInterface(window_size=32, mode="magnitude")
        returns = [dpd.dpd(v) for v in [0.0, 3.0, 7.0, 2.0] * 20]
        assert {r for r in returns if r} == {4}

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            DPDInterface(mode="spectral")

    def test_window_size_adjustment(self):
        dpd = DPDInterface(window_size=256)
        dpd.dpd_window_size(16)
        assert dpd.detector.window_size == 16

    def test_calls_counter_and_reset(self):
        dpd = DPDInterface(window_size=16)
        for v in [1, 2] * 10:
            dpd.dpd(v)
        assert dpd.calls == 20
        dpd.reset()
        assert dpd.calls == 0
        assert dpd.current_period is None

    def test_period_start_spacing_matches_period(self):
        dpd = DPDInterface(window_size=64)
        stream = [10, 20, 30, 40, 50] * 30
        starts = [i for i, v in enumerate(stream) if dpd.dpd(v)]
        assert len(starts) > 5
        assert all(b - a == 5 for a, b in zip(starts, starts[1:]))


class TestGlobalApi:
    def test_global_functions_share_state(self):
        reset_global_dpd(window_size=32)
        returns = [DPD(v) for v in [7, 8, 9] * 15]
        assert {r for r in returns if r} == {3}
        assert get_global_dpd().current_period == 3

    def test_window_size_function(self):
        reset_global_dpd(window_size=128)
        DPDWindowSize(32)
        assert get_global_dpd().detector.window_size == 32

    def test_reset_replaces_instance(self):
        first = reset_global_dpd()
        second = reset_global_dpd()
        assert first is not second
        assert get_global_dpd() is second

    def test_lazy_creation(self):
        api._global_dpd = None
        instance = get_global_dpd()
        assert isinstance(instance, DPDInterface)
