"""Tests for the DetectorEngine protocol, LockTracker and engine state.

Covers the protocol conformance of both detectors, batch-vs-loop
equivalence of ``update_batch``, snapshot/restore round-trips and the
configuration validations added with the engine layer.
"""

import numpy as np
import pytest

from repro.core.detector import DetectorConfig, DynamicPeriodicityDetector
from repro.core.engine import DetectionResult, DetectorEngine, LockTracker, make_engine
from repro.core.events import EventDetectorConfig, EventPeriodicityDetector
from repro.core.minima import PeriodCandidate
from repro.traces.synthetic import noisy_periodic_signal, periodic_signal
from repro.util.validation import ValidationError


def magnitude_engine(**overrides):
    options = dict(window_size=48, refresh_interval=19, evaluation_interval=3)
    options.update(overrides)
    return DynamicPeriodicityDetector(DetectorConfig(**options))


def event_engine(**overrides):
    options = dict(window_size=48)
    options.update(overrides)
    return EventPeriodicityDetector(EventDetectorConfig(**options))


def result_tuples(results):
    return [(r.index, r.period, r.is_period_start, r.new_detection, r.confidence) for r in results]


class TestProtocol:
    def test_both_detectors_satisfy_the_protocol(self):
        assert isinstance(magnitude_engine(), DetectorEngine)
        assert isinstance(event_engine(), DetectorEngine)

    def test_make_engine_builds_the_right_detector(self):
        assert isinstance(make_engine("event", window_size=32), EventPeriodicityDetector)
        assert isinstance(
            make_engine("magnitude", window_size=32), DynamicPeriodicityDetector
        )

    def test_make_engine_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            make_engine("spectral")

    def test_profile_accessor_matches_incremental_state(self):
        det = magnitude_engine()
        det.update_batch(periodic_signal(6, 120, seed=3))
        np.testing.assert_allclose(
            det.profile(), det._incremental_profile(), equal_nan=True
        )

    def test_event_profile_accessor_matches_distance_profile(self):
        from repro.core.distance import event_distance_profile

        det = event_engine(window_size=16)
        det.update_batch([5, 6, 7, 5, 6, 7, 5, 6, 7, 5])
        window = det.window_values()
        expected = event_distance_profile(window, det._max_lag)
        np.testing.assert_array_equal(det.profile()[: expected.size], expected)


class TestUpdateBatch:
    @pytest.mark.parametrize("mode", ["magnitude", "event"])
    def test_batch_equals_loop(self, mode):
        rng = np.random.default_rng(7)
        if mode == "magnitude":
            stream = noisy_periodic_signal(9, 300, noise_std=0.05, seed=1)
            a, b = magnitude_engine(), magnitude_engine()
        else:
            stream = rng.integers(0, 4, size=300)
            a, b = event_engine(), event_engine()
        batched = a.update_batch(stream)
        looped = [b.update(v) for v in stream]
        assert result_tuples(batched) == result_tuples(looped)
        assert all(isinstance(r, DetectionResult) for r in batched)

    def test_process_is_an_alias_for_update_batch(self):
        stream = periodic_signal(4, 100, seed=0)
        a, b = magnitude_engine(), magnitude_engine()
        assert result_tuples(a.process(stream)) == result_tuples(b.update_batch(stream))


class TestSnapshotRestore:
    @pytest.mark.parametrize("mode", ["magnitude", "event"])
    def test_restore_resumes_identically(self, mode):
        rng = np.random.default_rng(11)
        if mode == "magnitude":
            head = noisy_periodic_signal(7, 150, noise_std=0.1, seed=2)
            tail = noisy_periodic_signal(5, 150, noise_std=0.1, seed=3)
            det = magnitude_engine()
        else:
            head = rng.integers(0, 3, size=150)
            tail = rng.integers(0, 3, size=150)
            det = event_engine()
        det.update_batch(head)
        state = det.snapshot()
        expected = result_tuples(det.update_batch(tail))

        fresh = magnitude_engine() if mode == "magnitude" else event_engine()
        fresh.restore(state)
        assert result_tuples(fresh.update_batch(tail)) == expected

    def test_snapshot_is_a_copy(self):
        det = magnitude_engine()
        det.update_batch(periodic_signal(4, 60, seed=5))
        state = det.snapshot()
        det.update_batch(periodic_signal(4, 60, seed=6))
        assert state["index"] == 59  # unchanged by later updates

    def test_kind_mismatch_is_rejected(self):
        magnitude = magnitude_engine()
        magnitude.update(1.0)
        with pytest.raises(ValidationError):
            event_engine().restore(magnitude.snapshot())
        event = event_engine()
        event.update(1)
        with pytest.raises(ValidationError):
            magnitude_engine().restore(event.snapshot())


class TestLockTracker:
    def test_lock_and_period_starts(self):
        lock = LockTracker(loss_patience=2)
        assert lock.apply(PeriodCandidate(lag=4, distance=0.1, depth=0.9), index=10) is True
        assert lock.period == 4
        assert lock.is_period_start(10)
        assert not lock.is_period_start(11)
        assert lock.is_period_start(14)

    def test_patience_drops_the_lock(self):
        lock = LockTracker(loss_patience=2)
        lock.apply(PeriodCandidate(lag=4, distance=0.1, depth=0.9), index=0)
        lock.apply(None, index=1)
        assert lock.period == 4
        lock.apply(None, index=2)
        assert lock.period is None
        assert lock.confidence == 0.0

    def test_snapshot_round_trip(self):
        lock = LockTracker(loss_patience=3)
        lock.apply(PeriodCandidate(lag=6, distance=0.1, depth=0.5), index=7)
        copy = LockTracker(loss_patience=1)
        copy.restore(lock.snapshot())
        assert copy.period == 6 and copy.anchor == 7 and copy.loss_patience == 3
        # The snapshot must be decoupled from the original.
        copy.detected[99] = 1
        assert 99 not in lock.detected


class TestConfigValidation:
    def test_max_lag_below_min_lag_rejected(self):
        with pytest.raises(ValidationError):
            DetectorConfig(window_size=64, min_lag=8, max_lag=4)

    def test_event_max_lag_below_min_lag_rejected(self):
        with pytest.raises(ValidationError):
            EventDetectorConfig(window_size=64, min_lag=8, max_lag=4)

    def test_min_fill_above_window_rejected(self):
        with pytest.raises(ValidationError):
            DetectorConfig(window_size=16, min_fill=17)

    def test_boundary_values_accepted(self):
        DetectorConfig(window_size=16, min_lag=4, max_lag=4, min_fill=16)
        EventDetectorConfig(window_size=16, min_lag=4, max_lag=4)
