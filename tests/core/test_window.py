"""Tests for the DPD data window and the adaptive sizing policy."""

import numpy as np
import pytest

from repro.core.window import AdaptiveWindowPolicy, DataWindow
from repro.util.validation import ValidationError


class TestDataWindow:
    def test_initial_state(self):
        w = DataWindow(16)
        assert w.size == 16
        assert w.fill == 0
        assert not w.is_full
        assert w.total_pushed == 0

    def test_push_and_values(self):
        w = DataWindow(4)
        for v in [1.0, 2.0, 3.0, 4.0, 5.0]:
            w.push(v)
        assert w.is_full
        assert w.values().tolist() == [2.0, 3.0, 4.0, 5.0]
        assert w.total_pushed == 5

    def test_integral_window_uses_int_dtype(self):
        w = DataWindow(4, integral=True)
        w.push(0x400000)
        assert w.integral
        assert w.values().dtype == np.int64
        assert w.values()[0] == 0x400000

    def test_resize_keeps_newest(self):
        w = DataWindow(8)
        for v in range(8):
            w.push(float(v))
        w.resize(3)
        assert w.size == 3
        assert w.values().tolist() == [5.0, 6.0, 7.0]

    def test_clear(self):
        w = DataWindow(4)
        w.push(1.0)
        w.clear()
        assert w.fill == 0
        assert w.size == 4

    def test_invalid_size(self):
        with pytest.raises(ValidationError):
            DataWindow(0)


class TestAdaptiveWindowPolicy:
    def test_defaults_are_valid(self):
        policy = AdaptiveWindowPolicy()
        assert policy.min_size <= policy.initial_size <= policy.max_size

    def test_growth_without_detection(self):
        policy = AdaptiveWindowPolicy(initial_size=64, max_size=512, growth_factor=2.0)
        assert policy.next_size_without_detection(64, samples_since_growth=10) == 64
        assert policy.next_size_without_detection(64, samples_since_growth=64) == 128

    def test_growth_caps_at_max(self):
        policy = AdaptiveWindowPolicy(initial_size=512, max_size=600, growth_factor=2.0)
        assert policy.next_size_without_detection(512, 512) == 600

    def test_shrink_after_detection(self):
        policy = AdaptiveWindowPolicy(initial_size=512, min_size=16, max_size=1024, periods_to_keep=3)
        assert policy.next_size_with_detection(10) == 30
        assert policy.next_size_with_detection(2) == 16  # clamped to min_size
        assert policy.next_size_with_detection(500) == 1024  # clamped to max_size

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveWindowPolicy(min_size=100, max_size=50)
        with pytest.raises(ValueError):
            AdaptiveWindowPolicy(initial_size=4, min_size=8, max_size=64)
        with pytest.raises(ValueError):
            AdaptiveWindowPolicy(growth_factor=0.5)
