"""Tests for periodic value prediction."""

import numpy as np
import pytest

from repro.core.prediction import PeriodicPredictor, extrapolate, predict_next
from repro.util.validation import ValidationError


class TestPredictNext:
    def test_one_step_ahead(self):
        history = [1.0, 2.0, 3.0, 1.0, 2.0, 3.0]
        assert predict_next(history, 3, 1) == 1.0
        assert predict_next(history, 3, 2) == 2.0
        assert predict_next(history, 3, 3) == 3.0
        assert predict_next(history, 3, 4) == 1.0

    def test_period_multiple_horizon(self):
        history = [5.0, 7.0, 9.0]
        assert predict_next(history, 3, 3) == 9.0
        assert predict_next(history, 3, 6) == 9.0

    def test_requires_full_period_of_history(self):
        with pytest.raises(ValidationError):
            predict_next([1.0, 2.0], 3)

    def test_exact_for_periodic_stream(self):
        pattern = np.array([3.0, 1.0, 4.0, 1.0, 5.0])
        stream = np.tile(pattern, 10)
        for i in range(pattern.size, stream.size):
            assert predict_next(stream[:i], pattern.size, 1) == stream[i]


class TestExtrapolate:
    def test_extends_periodically(self):
        history = [1.0, 2.0, 3.0, 1.0, 2.0, 3.0]
        out = extrapolate(history, 3, 7)
        assert out.tolist() == [1.0, 2.0, 3.0, 1.0, 2.0, 3.0, 1.0]

    def test_count_shorter_than_period(self):
        out = extrapolate([4.0, 5.0, 6.0], 3, 2)
        assert out.tolist() == [4.0, 5.0]


class TestPeriodicPredictor:
    def test_not_ready_until_one_period(self):
        p = PeriodicPredictor(4)
        assert not p.ready
        for v in [1.0, 2.0, 3.0, 4.0]:
            assert p.observe(v) is None
        assert p.ready

    def test_perfect_prediction_on_periodic_stream(self):
        p = PeriodicPredictor(3)
        stream = [1.0, 5.0, 9.0] * 20
        errors = [p.observe(v) for v in stream]
        scored = [e for e in errors if e is not None]
        assert scored
        assert max(scored) == 0.0
        assert p.exact_hit_rate == 1.0
        assert p.mean_absolute_error == 0.0

    def test_error_tracked_for_noisy_stream(self, rng):
        p = PeriodicPredictor(5, history=list(rng.normal(size=5)))
        for v in rng.normal(size=50):
            p.observe(v)
        assert p.observations == 50
        assert p.mean_absolute_error > 0.0

    def test_predict_requires_history(self):
        p = PeriodicPredictor(3)
        with pytest.raises(ValidationError):
            p.predict()

    def test_history_is_bounded(self):
        p = PeriodicPredictor(4)
        for v in range(1000):
            p.observe(float(v % 4))
        assert len(p._history) <= 16

    def test_set_period(self):
        p = PeriodicPredictor(3, history=[1.0, 2.0, 3.0, 1.0, 2.0, 3.0])
        p.set_period(2)
        assert p.period == 2
