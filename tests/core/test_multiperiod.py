"""Tests for multi-scale and hierarchical periodicity detection."""

import numpy as np
import pytest

from repro.core.multiperiod import (
    MultiScaleConfig,
    MultiScaleEventDetector,
    hierarchical_periodicities,
)
from repro.traces.synthetic import nested_event_pattern
from repro.util.validation import ValidationError


def nested_stream(run=20, inner_period=6, inner_reps=8, tail=10, outer_reps=12):
    pattern = nested_event_pattern(
        run_value=1,
        run_length=run,
        inner_pattern=list(range(100, 100 + inner_period)),
        inner_repetitions=inner_reps,
        tail=list(range(500, 500 + tail)),
    )
    return np.tile(pattern, outer_reps), pattern.size


class TestMultiScaleConfig:
    def test_window_sizes_sorted_and_deduped(self):
        cfg = MultiScaleConfig(window_sizes=(64, 16, 64))
        assert cfg.window_sizes == (16, 64)

    def test_empty_window_sizes_rejected(self):
        with pytest.raises(ValidationError):
            MultiScaleConfig(window_sizes=())


class TestMultiScaleDetector:
    def test_detects_all_nested_periods(self):
        stream, outer = nested_stream()
        det = MultiScaleEventDetector(MultiScaleConfig(window_sizes=(16, 32, 256)))
        det.process(stream)
        detected = set(det.detected_periods)
        assert 1 in detected  # the run of identical events
        assert 6 in detected  # the inner pattern
        assert outer in detected  # the outer iteration

    def test_current_period_is_largest_scale(self):
        stream, outer = nested_stream()
        det = MultiScaleEventDetector(MultiScaleConfig(window_sizes=(16, 32, 256)))
        det.process(stream)
        assert det.current_period == outer

    def test_simple_stream_single_period(self):
        det = MultiScaleEventDetector(MultiScaleConfig(window_sizes=(16, 64)))
        det.process(np.tile(np.arange(5), 40))
        assert det.detected_periods == [5]

    def test_segmentation_marks_spaced_by_outer_period(self):
        stream, outer = nested_stream()
        det = MultiScaleEventDetector(MultiScaleConfig(window_sizes=(16, 32, 256)))
        results = det.process(stream)
        starts = [r.index for r in results if r.is_period_start and r.period == outer]
        assert len(starts) >= 3
        assert outer in set(np.diff(starts))

    def test_reset(self):
        det = MultiScaleEventDetector(MultiScaleConfig(window_sizes=(16, 32)))
        det.process(np.tile(np.arange(4), 20))
        det.reset()
        assert det.samples_seen == 0
        assert det.detected_periods == []


class TestHierarchicalPeriodicities:
    def test_flat_periodic_stream(self):
        stream = np.tile(np.arange(7), 30)
        assert hierarchical_periodicities(stream, max_period=50) == [7]

    def test_nested_stream_reports_all_levels(self):
        stream, outer = nested_stream()
        periods = hierarchical_periodicities(stream, max_period=outer + 10)
        assert periods == [1, 6, outer]

    def test_harmonics_are_not_reported(self):
        stream = np.tile(np.arange(4), 50)
        periods = hierarchical_periodicities(stream, max_period=40)
        assert 8 not in periods
        assert 12 not in periods

    def test_aperiodic_stream(self):
        stream = np.arange(200)
        assert hierarchical_periodicities(stream, max_period=50) == []

    def test_rejects_tiny_streams(self):
        with pytest.raises(ValidationError):
            hierarchical_periodicities([1])

    def test_min_region_filters_short_matches(self):
        # Two occurrences of the same value separated by lag 3 form a tiny
        # periodic region that a large min_region must filter out.
        stream = np.array([1, 2, 3, 1, 9, 8, 7, 6, 5, 4])
        assert hierarchical_periodicities(stream, max_period=5, min_region=6) == []
