"""Property tests: batched period selection == the per-stream oracle.

``select_periods_batch`` replaces the magnitude bank's per-stream
``select_period`` loop with whole-matrix passes; the ROADMAP's lockstep
bottleneck only moves safely if every row of the batched result is
*exactly* what the scalar call would have produced — including NaN
padding, plateau handling, the ``min_depth`` gate, harmonic suppression
and the deepest-then-smallest-lag tie break.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.minima import select_period, select_periods_batch


def oracle_rows(matrix, *, min_lag, min_depth, harmonic_tolerance):
    out = []
    for row in matrix:
        candidate = select_period(
            row,
            min_lag=min_lag,
            min_depth=min_depth,
            harmonic_tolerance=harmonic_tolerance,
        )
        out.append(
            (0, 0.0, 0.0)
            if candidate is None
            else (candidate.lag, candidate.distance, candidate.depth)
        )
    return out


@st.composite
def profile_matrices(draw):
    streams = draw(st.integers(min_value=1, max_value=6))
    lags = draw(st.integers(min_value=2, max_value=40))
    # Values with repeats (plateaus), zeros and NaN stretches: the shapes
    # that exercise every branch of the minima search.
    value = st.one_of(
        st.just(np.nan),
        st.just(0.0),
        st.integers(min_value=0, max_value=6).map(float),
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    )
    rows = draw(
        st.lists(
            st.lists(value, min_size=lags, max_size=lags),
            min_size=streams,
            max_size=streams,
        )
    )
    return np.array(rows, dtype=float)


class TestBatchEqualsOracle:
    # The kernel_backend fixture only swaps which (stateless) kernel
    # module the batch call dispatches to, so reusing it across
    # hypothesis examples is sound.
    @settings(
        max_examples=300,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        matrix=profile_matrices(),
        min_lag=st.integers(min_value=1, max_value=6),
        min_depth=st.floats(min_value=0.0, max_value=1.0),
        tolerance=st.floats(min_value=0.0, max_value=0.5),
    )
    def test_every_row_matches_select_period(
        self, kernel_backend, matrix, min_lag, min_depth, tolerance
    ):
        lags, distances, depths = select_periods_batch(
            matrix, min_lag=min_lag, min_depth=min_depth, harmonic_tolerance=tolerance
        )
        expected = oracle_rows(
            matrix, min_lag=min_lag, min_depth=min_depth, harmonic_tolerance=tolerance
        )
        got = list(zip(lags.tolist(), distances.tolist(), depths.tolist()))
        assert got == expected

    def test_realistic_periodic_profiles(self):
        # A sharp profile with harmonics: minima at 5, 10, 15, ... must
        # resolve to the fundamental in every row.
        lags = np.arange(41, dtype=float)
        profile = np.where(lags % 5 == 0, 0.1, 3.0)
        profile[0] = np.nan
        matrix = np.stack([profile, profile * 2.0, np.full(41, np.nan)])
        selected, _, _ = select_periods_batch(matrix, min_lag=2)
        assert selected.tolist() == [5, 5, 0]

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            select_periods_batch(np.zeros(8))

    def test_empty_lag_axis(self):
        lags, distances, depths = select_periods_batch(np.empty((3, 0)))
        assert lags.tolist() == [0, 0, 0]
        assert distances.tolist() == [0.0, 0.0, 0.0]
        assert depths.tolist() == [0.0, 0.0, 0.0]
