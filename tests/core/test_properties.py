"""Property-based tests (hypothesis) on the core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distance import amdf_at_lag, amdf_profile, event_distance_at_lag, matching_lags
from repro.core.events import EventDetectorConfig, EventPeriodicityDetector
from repro.core.detector import DetectorConfig, DynamicPeriodicityDetector
from repro.core.prediction import extrapolate, predict_next
from repro.util.ringbuffer import RingBuffer

# Keep hypothesis examples small so the whole suite stays fast.
COMMON_SETTINGS = settings(max_examples=40, deadline=None)


finite_floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)


class TestRingBufferProperties:
    @COMMON_SETTINGS
    @given(
        capacity=st.integers(min_value=1, max_value=32),
        values=st.lists(finite_floats, min_size=0, max_size=200),
    )
    def test_ringbuffer_matches_list_suffix(self, capacity, values):
        """A ring buffer always equals the last `capacity` pushed values."""
        rb = RingBuffer(capacity)
        rb.extend(values)
        expected = values[-capacity:]
        assert rb.to_array().tolist() == [float(v) for v in expected]
        assert len(rb) == len(expected)

    @COMMON_SETTINGS
    @given(
        capacity=st.integers(min_value=1, max_value=16),
        values=st.lists(finite_floats, min_size=1, max_size=64),
        new_capacity=st.integers(min_value=1, max_value=16),
    )
    def test_resize_preserves_newest(self, capacity, values, new_capacity):
        rb = RingBuffer(capacity)
        rb.extend(values)
        before = rb.to_array().tolist()
        rb.resize(new_capacity)
        assert rb.to_array().tolist() == before[-new_capacity:]


class TestDistanceProperties:
    @COMMON_SETTINGS
    @given(
        pattern=st.lists(finite_floats, min_size=1, max_size=12),
        repetitions=st.integers(min_value=2, max_value=8),
    )
    def test_amdf_zero_at_pattern_length(self, pattern, repetitions):
        """d(m) is exactly zero at the tiling length of any repeated pattern."""
        window = np.tile(np.asarray(pattern, dtype=float), repetitions)
        assert amdf_at_lag(window, len(pattern)) == 0.0

    @COMMON_SETTINGS
    @given(values=st.lists(finite_floats, min_size=4, max_size=64), lag=st.integers(1, 10))
    def test_amdf_non_negative(self, values, lag):
        window = np.asarray(values)
        if lag >= window.size:
            return
        assert amdf_at_lag(window, lag) >= 0.0

    @COMMON_SETTINGS
    @given(values=st.lists(st.integers(0, 5), min_size=6, max_size=80))
    def test_event_distance_consistent_with_amdf(self, values):
        """Equation (2) is zero exactly where equation (1) is zero."""
        window = np.asarray(values, dtype=np.int64)
        for lag in range(1, min(8, window.size - 1) + 1):
            ev = event_distance_at_lag(window, lag)
            am = amdf_at_lag(window.astype(float), lag)
            assert (ev == 0) == (am == 0.0)

    @COMMON_SETTINGS
    @given(
        pattern=st.lists(st.integers(0, 1000), min_size=1, max_size=10),
        repetitions=st.integers(min_value=3, max_value=10),
    )
    def test_matching_lags_includes_pattern_multiples_only(self, pattern, repetitions):
        window = np.tile(np.asarray(pattern, dtype=np.int64), repetitions)
        lags = matching_lags(window, min_repetitions=2)
        assert lags, "a tiled pattern must have at least one matching lag"
        fundamental = lags[0]
        assert len(pattern) % fundamental == 0
        for lag in lags:
            assert lag % fundamental == 0


class TestDetectorProperties:
    @COMMON_SETTINGS
    @given(
        period=st.integers(min_value=2, max_value=10),
        repetitions=st.integers(min_value=8, max_value=20),
    )
    def test_event_detector_reports_divisor_of_true_period(self, period, repetitions):
        """The detected fundamental always divides the generating period."""
        rng = np.random.default_rng(period * 101 + repetitions)
        pattern = rng.integers(0, 1_000_000, size=period)
        det = EventPeriodicityDetector(EventDetectorConfig(window_size=64))
        det.process(np.tile(pattern, repetitions))
        assert det.current_period is not None
        assert period % det.current_period == 0

    @COMMON_SETTINGS
    @given(period=st.integers(min_value=2, max_value=8))
    def test_magnitude_detector_on_distinct_valued_pattern(self, period):
        """With distinct pattern values the detected period is exact."""
        pattern = np.arange(period, dtype=float) * 3.7 + 1.0
        det = DynamicPeriodicityDetector(DetectorConfig(window_size=64))
        det.process(np.tile(pattern, 20))
        assert det.current_period == period

    @COMMON_SETTINGS
    @given(
        period=st.integers(min_value=2, max_value=8),
        repetitions=st.integers(min_value=6, max_value=15),
    )
    def test_period_starts_spaced_by_detected_period(self, period, repetitions):
        """Within one stable lock, consecutive period starts are one (or a
        whole number of) locked period(s) apart."""
        rng = np.random.default_rng(period * 7 + repetitions)
        pattern = rng.integers(0, 100, size=period)
        det = EventPeriodicityDetector(EventDetectorConfig(window_size=64))
        results = det.process(np.tile(pattern, repetitions))
        last_start = None
        last_period = None
        for r in results:
            if r.new_detection:
                last_start = None
            if r.is_period_start and r.period is not None:
                if last_start is not None and r.period == last_period:
                    assert (r.index - last_start) % r.period == 0
                last_start = r.index
                last_period = r.period


class TestPredictionProperties:
    @COMMON_SETTINGS
    @given(
        pattern=st.lists(finite_floats, min_size=1, max_size=8),
        repetitions=st.integers(min_value=2, max_value=6),
        horizon=st.integers(min_value=1, max_value=12),
    )
    def test_prediction_is_exact_on_periodic_streams(self, pattern, repetitions, horizon):
        period = len(pattern)
        history = np.tile(np.asarray(pattern, dtype=float), repetitions)
        predicted = predict_next(history, period, horizon)
        true_value = pattern[(history.size + horizon - 1) % period]
        assert predicted == float(true_value)

    @COMMON_SETTINGS
    @given(
        pattern=st.lists(finite_floats, min_size=1, max_size=6),
        count=st.integers(min_value=1, max_value=20),
    )
    def test_extrapolation_is_periodic(self, pattern, count):
        period = len(pattern)
        history = np.tile(np.asarray(pattern, dtype=float), 3)
        out = extrapolate(history, period, count)
        assert out.size == count
        for i, value in enumerate(out):
            assert value == history[history.size - period + (i % period)]


class TestIncrementalProfileProperties:
    """The incremental AMDF state must track the exact recompute everywhere."""

    @COMMON_SETTINGS
    @given(
        window_size=st.integers(min_value=4, max_value=48),
        refresh=st.integers(min_value=3, max_value=64),
        values=st.lists(
            st.floats(min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False),
            min_size=2,
            max_size=160,
        ),
        resize_to=st.integers(min_value=4, max_value=48),
        resize_at=st.integers(min_value=0, max_value=159),
    )
    def test_incremental_profile_matches_exact_profile(
        self, window_size, refresh, values, resize_to, resize_at
    ):
        """`_incremental_profile` == `amdf_profile` within 1e-9 at every
        sample, across random streams, a mid-stream window resize and
        arbitrary refresh boundaries."""
        config = DetectorConfig(
            window_size=window_size,
            min_fill=min(8, window_size),
            refresh_interval=refresh,
        )
        det = DynamicPeriodicityDetector(config)
        for i, value in enumerate(values):
            det.update(value)
            window = det.window_values()
            if window.size >= 2:
                exact = amdf_profile(
                    window,
                    min(det._max_lag, window.size - 1),
                    min_lag=config.min_lag,
                )
                incremental = det._incremental_profile()[: exact.size]
                np.testing.assert_allclose(
                    incremental, exact, atol=1e-9, equal_nan=True
                )
            if i == resize_at:
                det.set_window_size(resize_to)

    @COMMON_SETTINGS
    @given(
        values=st.lists(
            st.floats(min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False),
            min_size=1,
            max_size=120,
        ),
        window_size=st.integers(min_value=4, max_value=32),
    )
    def test_update_batch_equals_update_loop(self, values, window_size):
        config = DetectorConfig(window_size=window_size, min_fill=min(8, window_size))
        batched = DynamicPeriodicityDetector(config).update_batch(values)
        det = DynamicPeriodicityDetector(config)
        looped = [det.update(v) for v in values]
        assert [
            (r.index, r.period, r.is_period_start, r.new_detection, r.confidence)
            for r in batched
        ] == [
            (r.index, r.period, r.is_period_start, r.new_detection, r.confidence)
            for r in looped
        ]

    @COMMON_SETTINGS
    @given(
        values=st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=120),
        window_size=st.integers(min_value=4, max_value=32),
    )
    def test_event_update_batch_equals_update_loop(self, values, window_size):
        config = EventDetectorConfig(window_size=window_size)
        batched = EventPeriodicityDetector(config).update_batch(values)
        det = EventPeriodicityDetector(config)
        looped = [det.update(v) for v in values]
        assert [
            (r.index, r.period, r.is_period_start, r.new_detection)
            for r in batched
        ] == [
            (r.index, r.period, r.is_period_start, r.new_detection)
            for r in looped
        ]
