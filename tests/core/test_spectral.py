"""Tests for the autocorrelation / periodogram baseline estimators."""

import numpy as np
import pytest

from repro.core.spectral import (
    autocorrelation,
    autocorrelation_period,
    periodogram,
    periodogram_period,
)
from repro.traces.synthetic import noisy_periodic_signal, periodic_signal
from repro.util.validation import ValidationError


class TestAutocorrelation:
    def test_lag_zero_is_one(self, rng):
        signal = rng.normal(size=128)
        acorr = autocorrelation(signal, 40)
        assert acorr[0] == pytest.approx(1.0)

    def test_peak_at_period(self):
        signal = periodic_signal(8, 256, seed=1)
        acorr = autocorrelation(signal, 64)
        assert acorr[8] == pytest.approx(acorr[1:40].max(), rel=1e-6)

    def test_requires_minimum_length(self):
        with pytest.raises(ValidationError):
            autocorrelation([1.0, 2.0], 1)


class TestAutocorrelationPeriod:
    def test_recovers_period(self):
        signal = noisy_periodic_signal(11, 600, noise_std=0.05, seed=2)
        assert autocorrelation_period(signal, max_lag=100) == 11

    def test_returns_none_for_noise(self, rng):
        signal = rng.normal(size=512)
        period = autocorrelation_period(signal, max_lag=100, min_correlation=0.5)
        assert period is None


class TestPeriodogram:
    def test_shapes(self, rng):
        freqs, power = periodogram(rng.normal(size=100))
        assert freqs.size == power.size == 51

    def test_dominant_frequency_of_sine(self):
        n = 512
        t = np.arange(n)
        signal = np.sin(2 * np.pi * t / 16)
        assert periodogram_period(signal) == 16

    def test_periodic_pattern(self):
        signal = periodic_signal(10, 500, seed=3)
        period = periodogram_period(signal, max_period=100)
        assert period is not None
        # The periodogram peak may land on the fundamental frequency or on a
        # strong harmonic; the fundamental must divide cleanly into it.
        assert 10 % period == 0 or period % 10 == 0

    def test_flat_signal_returns_none(self):
        assert periodogram_period(np.full(64, 3.0)) is None
