"""Tests for local-minimum search and harmonic filtering."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distance import amdf_profile
from repro.core.minima import PeriodCandidate, filter_harmonics, find_local_minima, select_period


def profile_for(pattern, repetitions, max_lag, noise=0.0, seed=0):
    rng = np.random.default_rng(seed)
    window = np.tile(np.asarray(pattern, dtype=float), repetitions)
    if noise:
        window = window + rng.normal(0, noise, size=window.size)
    return amdf_profile(window, max_lag)


class TestFindLocalMinima:
    def test_finds_period_and_harmonics(self):
        profile = profile_for([0, 3, 1, 4, 2], 8, 20)
        lags = {c.lag for c in find_local_minima(profile)}
        assert {5, 10, 15, 20} <= lags

    def test_depth_is_one_for_exact_match(self):
        profile = profile_for([0, 3, 1, 4, 2], 8, 12)
        by_lag = {c.lag: c for c in find_local_minima(profile)}
        assert by_lag[5].depth == pytest.approx(1.0)
        assert by_lag[5].distance == 0.0

    def test_empty_profile(self):
        assert find_local_minima(np.full(10, np.nan)) == []

    def test_min_lag_respected(self):
        profile = profile_for([0, 1], 10, 10)
        lags = {c.lag for c in find_local_minima(profile, min_lag=3)}
        assert 2 not in lags

    def test_candidate_requires_positive_lag(self):
        with pytest.raises(ValueError):
            PeriodCandidate(lag=0, distance=0.0, depth=1.0)


class TestFilterHarmonics:
    def test_drops_multiples(self):
        cands = [
            PeriodCandidate(5, 0.0, 1.0),
            PeriodCandidate(10, 0.0, 1.0),
            PeriodCandidate(15, 0.0, 1.0),
        ]
        kept = filter_harmonics(cands)
        assert [c.lag for c in kept] == [5]

    def test_keeps_unrelated_periods(self):
        cands = [PeriodCandidate(5, 0.0, 1.0), PeriodCandidate(7, 0.0, 1.0)]
        kept = filter_harmonics(cands)
        assert {c.lag for c in kept} == {5, 7}

    def test_keeps_much_deeper_multiple(self):
        # The lag-10 minimum is far deeper than the shallow lag-5 one, so it
        # is considered a genuine period rather than a harmonic.
        cands = [PeriodCandidate(5, 0.5, 0.2), PeriodCandidate(10, 0.0, 0.95)]
        kept = filter_harmonics(cands, tolerance=0.15)
        assert 10 in {c.lag for c in kept}

    def test_empty_input(self):
        assert filter_harmonics([]) == []


def _filter_harmonics_loop(candidates, *, tolerance=0.15):
    """The pre-vectorisation O(k^2) Python loop, kept as the test oracle."""
    by_lag = sorted(candidates, key=lambda c: c.lag)
    kept = []
    for cand in by_lag:
        is_harmonic = False
        for base in kept:
            if cand.lag % base.lag == 0 and cand.lag != base.lag:
                if cand.depth <= base.depth + tolerance:
                    is_harmonic = True
                    break
        if not is_harmonic:
            kept.append(cand)
    return kept


class TestFilterHarmonicsMatchesLoop:
    """Property: the broadcast implementation equals the loop oracle."""

    @given(
        lag_depths=st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=60),
                st.floats(min_value=-0.5, max_value=1.0),
            ),
            min_size=1,
            max_size=24,
            unique_by=lambda t: t[0],
        ),
        tolerance=st.floats(min_value=0.0, max_value=0.5),
    )
    @settings(max_examples=200, deadline=None)
    def test_matches_loop_on_random_candidates(self, lag_depths, tolerance):
        cands = [
            PeriodCandidate(lag=lag, distance=abs(1.0 - depth), depth=depth)
            for lag, depth in lag_depths
        ]
        got = filter_harmonics(cands, tolerance=tolerance)
        expected = _filter_harmonics_loop(cands, tolerance=tolerance)
        assert [(c.lag, c.depth) for c in got] == [(c.lag, c.depth) for c in expected]

    def test_matches_loop_on_random_profiles(self):
        rng = np.random.default_rng(11)
        for trial in range(50):
            pattern = rng.integers(0, 6, size=rng.integers(2, 9))
            window = np.tile(pattern.astype(float), 12)
            window += rng.normal(0, rng.uniform(0, 0.3), size=window.size)
            profile = amdf_profile(window, min(48, window.size - 1))
            cands = find_local_minima(profile)
            got = filter_harmonics(cands)
            expected = _filter_harmonics_loop(cands)
            assert [c.lag for c in got] == [c.lag for c in expected], trial

    def test_dropped_harmonic_does_not_suppress(self):
        # Lag 4 is dropped as a harmonic of lag 2; it must then not drop
        # lag 8, which survives against lag 2 alone (kept-set semantics).
        cands = [
            PeriodCandidate(2, 0.5, 0.50),
            PeriodCandidate(4, 0.4, 0.60),
            PeriodCandidate(8, 0.3, 0.70),
        ]
        kept = filter_harmonics(cands, tolerance=0.15)
        assert [c.lag for c in kept] == [2, 8]


class TestSelectPeriod:
    def test_selects_fundamental(self):
        profile = profile_for([0, 3, 1, 4, 2, 9], 8, 30)
        choice = select_period(profile)
        assert choice is not None
        assert choice.lag == 6

    def test_returns_none_for_aperiodic(self, rng):
        window = rng.normal(size=128)
        profile = amdf_profile(window, 60)
        choice = select_period(profile, min_depth=0.5)
        assert choice is None

    def test_noisy_periodic_signal(self):
        profile = profile_for(np.arange(9), 10, 40, noise=0.05, seed=3)
        choice = select_period(profile, min_depth=0.2)
        assert choice is not None
        assert choice.lag == 9

    def test_min_depth_threshold(self):
        profile = profile_for([0, 3, 1, 4, 2], 8, 20)
        assert select_period(profile, min_depth=0.99) is not None
        # A nearly flat profile never qualifies with a strict threshold.
        flat = np.ones(20)
        flat[0] = np.nan
        assert select_period(flat, min_depth=0.5) is None
