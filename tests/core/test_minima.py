"""Tests for local-minimum search and harmonic filtering."""

import numpy as np
import pytest

from repro.core.distance import amdf_profile
from repro.core.minima import PeriodCandidate, filter_harmonics, find_local_minima, select_period


def profile_for(pattern, repetitions, max_lag, noise=0.0, seed=0):
    rng = np.random.default_rng(seed)
    window = np.tile(np.asarray(pattern, dtype=float), repetitions)
    if noise:
        window = window + rng.normal(0, noise, size=window.size)
    return amdf_profile(window, max_lag)


class TestFindLocalMinima:
    def test_finds_period_and_harmonics(self):
        profile = profile_for([0, 3, 1, 4, 2], 8, 20)
        lags = {c.lag for c in find_local_minima(profile)}
        assert {5, 10, 15, 20} <= lags

    def test_depth_is_one_for_exact_match(self):
        profile = profile_for([0, 3, 1, 4, 2], 8, 12)
        by_lag = {c.lag: c for c in find_local_minima(profile)}
        assert by_lag[5].depth == pytest.approx(1.0)
        assert by_lag[5].distance == 0.0

    def test_empty_profile(self):
        assert find_local_minima(np.full(10, np.nan)) == []

    def test_min_lag_respected(self):
        profile = profile_for([0, 1], 10, 10)
        lags = {c.lag for c in find_local_minima(profile, min_lag=3)}
        assert 2 not in lags

    def test_candidate_requires_positive_lag(self):
        with pytest.raises(ValueError):
            PeriodCandidate(lag=0, distance=0.0, depth=1.0)


class TestFilterHarmonics:
    def test_drops_multiples(self):
        cands = [
            PeriodCandidate(5, 0.0, 1.0),
            PeriodCandidate(10, 0.0, 1.0),
            PeriodCandidate(15, 0.0, 1.0),
        ]
        kept = filter_harmonics(cands)
        assert [c.lag for c in kept] == [5]

    def test_keeps_unrelated_periods(self):
        cands = [PeriodCandidate(5, 0.0, 1.0), PeriodCandidate(7, 0.0, 1.0)]
        kept = filter_harmonics(cands)
        assert {c.lag for c in kept} == {5, 7}

    def test_keeps_much_deeper_multiple(self):
        # The lag-10 minimum is far deeper than the shallow lag-5 one, so it
        # is considered a genuine period rather than a harmonic.
        cands = [PeriodCandidate(5, 0.5, 0.2), PeriodCandidate(10, 0.0, 0.95)]
        kept = filter_harmonics(cands, tolerance=0.15)
        assert 10 in {c.lag for c in kept}

    def test_empty_input(self):
        assert filter_harmonics([]) == []


class TestSelectPeriod:
    def test_selects_fundamental(self):
        profile = profile_for([0, 3, 1, 4, 2, 9], 8, 30)
        choice = select_period(profile)
        assert choice is not None
        assert choice.lag == 6

    def test_returns_none_for_aperiodic(self, rng):
        window = rng.normal(size=128)
        profile = amdf_profile(window, 60)
        choice = select_period(profile, min_depth=0.5)
        assert choice is None

    def test_noisy_periodic_signal(self):
        profile = profile_for(np.arange(9), 10, 40, noise=0.05, seed=3)
        choice = select_period(profile, min_depth=0.2)
        assert choice is not None
        assert choice.lag == 9

    def test_min_depth_threshold(self):
        profile = profile_for([0, 3, 1, 4, 2], 8, 20)
        assert select_period(profile, min_depth=0.99) is not None
        # A nearly flat profile never qualifies with a strict threshold.
        flat = np.ones(20)
        flat[0] = np.nan
        assert select_period(flat, min_depth=0.5) is None
