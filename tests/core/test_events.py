"""Tests for the exact-match event-stream detector (equation 2)."""

import numpy as np
import pytest

from repro.core.events import EventDetectorConfig, EventPeriodicityDetector
from repro.util.validation import ValidationError


def addresses(*indices):
    return [0x400000 + 0x140 * i for i in indices]


class TestConfig:
    def test_max_lag_validation(self):
        with pytest.raises(ValidationError):
            EventDetectorConfig(window_size=16, max_lag=16)

    def test_min_lag_validation(self):
        with pytest.raises(ValidationError):
            EventDetectorConfig(window_size=16, min_lag=16)

    def test_config_kwargs_exclusive(self):
        with pytest.raises(ValidationError):
            EventPeriodicityDetector(EventDetectorConfig(), window_size=8)


class TestDetection:
    def test_detects_simple_period(self):
        det = EventPeriodicityDetector(EventDetectorConfig(window_size=32))
        for v in addresses(0, 1, 2) * 10:
            det.update(v)
        assert det.current_period == 3
        assert det.detected_periods == [3]

    def test_detects_period_one_for_constant_stream(self):
        det = EventPeriodicityDetector(EventDetectorConfig(window_size=16))
        for _ in range(20):
            det.update(0x400000)
        assert det.current_period == 1

    def test_reports_fundamental_not_harmonic(self):
        det = EventPeriodicityDetector(EventDetectorConfig(window_size=64))
        for v in addresses(0, 1, 2, 3, 4) * 20:
            det.update(v)
        assert det.current_period == 5

    def test_no_detection_on_distinct_values(self):
        det = EventPeriodicityDetector(EventDetectorConfig(window_size=64))
        for v in addresses(*range(50)):
            det.update(v)
        assert det.current_period is None

    def test_min_repetitions_enforced(self):
        config = EventDetectorConfig(window_size=64, min_repetitions=3)
        det = EventPeriodicityDetector(config)
        det.process(addresses(0, 1, 2, 3) * 2)  # only two repetitions
        assert det.current_period is None
        det.process(addresses(0, 1, 2, 3))  # third repetition arrives
        assert det.current_period == 4

    def test_require_full_window(self):
        config = EventDetectorConfig(window_size=32, require_full_window=True)
        det = EventPeriodicityDetector(config)
        det.process(addresses(0, 1, 2) * 5)  # 15 < 32 events
        assert det.current_period is None
        det.process(addresses(0, 1, 2) * 10)
        assert det.current_period == 3


class TestPeriodStarts:
    def test_starts_spaced_by_period(self):
        det = EventPeriodicityDetector(EventDetectorConfig(window_size=32))
        results = det.process(addresses(0, 1, 2, 3) * 25)
        starts = [r.index for r in results if r.is_period_start]
        assert len(starts) >= 10
        assert set(np.diff(starts)) == {4}

    def test_start_value_matches_anchor(self):
        det = EventPeriodicityDetector(EventDetectorConfig(window_size=32))
        stream = addresses(0, 1, 2, 3) * 25
        results = det.process(stream)
        start_values = {stream[r.index] for r in results if r.is_period_start}
        assert len(start_values) == 1

    def test_incremental_counts_match_recount(self):
        det = EventPeriodicityDetector(EventDetectorConfig(window_size=16))
        rng = np.random.default_rng(0)
        stream = rng.integers(0, 4, size=200)
        det.process(stream)
        window = det.window_values()
        for lag in range(1, min(det.config.effective_max_lag, window.size - 1) + 1):
            expected = int(np.count_nonzero(window[lag:] != window[:-lag]))
            assert det._mismatches[lag] == expected


class TestLockDynamics:
    def test_lock_lost_when_pattern_breaks(self):
        det = EventPeriodicityDetector(EventDetectorConfig(window_size=16, loss_patience=3))
        det.process(addresses(0, 1) * 12)
        assert det.current_period == 2
        det.process(addresses(*range(2, 30)))
        assert det.current_period is None

    def test_nested_stream_switches_to_outer_period(self):
        # A window that eventually only matches the outer period.
        inner = addresses(0, 1, 2)
        outer = inner * 3 + addresses(7, 8, 9)  # outer period 12
        det = EventPeriodicityDetector(EventDetectorConfig(window_size=32))
        det.process(outer * 10)
        assert det.current_period == 12
        assert 12 in det.detected_periods

    def test_set_window_size_rebuilds_state(self):
        det = EventPeriodicityDetector(EventDetectorConfig(window_size=64))
        det.process(addresses(0, 1, 2, 3, 4) * 10)
        det.set_window_size(16)
        assert det.window_size == 16
        det.process(addresses(0, 1, 2, 3, 4) * 10)
        assert det.current_period == 5

    def test_reset(self):
        det = EventPeriodicityDetector(EventDetectorConfig(window_size=16))
        det.process(addresses(0, 1) * 10)
        det.reset()
        assert det.samples_seen == 0
        assert det.current_period is None
        assert det.detected_periods == []
