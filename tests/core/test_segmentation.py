"""Tests for stream segmentation."""

import numpy as np
import pytest

from repro.core.events import EventDetectorConfig, EventPeriodicityDetector
from repro.core.segmentation import Segment, SegmentationRecorder, segment_boundaries, segment_stream
from repro.core.detector import DetectionResult


class TestSegment:
    def test_basic_properties(self):
        seg = Segment(start=10, length=5, anchor_value=42.0)
        assert seg.end == 15
        assert seg.contains(10)
        assert seg.contains(14)
        assert not seg.contains(15)
        assert not seg.contains(9)

    def test_validation(self):
        with pytest.raises(ValueError):
            Segment(start=-1, length=5)
        with pytest.raises(Exception):
            Segment(start=0, length=0)


class TestSegmentationRecorder:
    def test_segments_closed_at_next_start(self):
        rec = SegmentationRecorder()
        rec.on_period_start(0, 4, value=1.0)
        rec.on_period_start(4, 4, value=1.0)
        rec.on_period_start(8, 4, value=1.0)
        rec.finalize(stream_length=12)
        assert [s.start for s in rec.segments] == [0, 4, 8]
        assert all(s.length == 4 for s in rec.segments)

    def test_drifting_boundary_produces_contiguous_segments(self):
        rec = SegmentationRecorder()
        rec.on_period_start(0, 4)
        rec.on_period_start(5, 4)  # one sample late
        rec.finalize(stream_length=9)
        assert rec.segments[0].length == 5
        assert rec.segments[1].start == 5

    def test_detected_periods_and_counts(self):
        rec = SegmentationRecorder()
        for start in (0, 3, 6):
            rec.on_period_start(start, 3)
        rec.on_period_start(9, 7)
        assert rec.detected_periods == [3, 7]
        assert rec.period_counts == {3: 3, 7: 1}

    def test_finalize_without_open_segment_is_noop(self):
        rec = SegmentationRecorder()
        rec.finalize()
        assert len(rec) == 0

    def test_boundaries(self):
        rec = SegmentationRecorder()
        rec.on_period_start(2, 5)
        rec.on_period_start(7, 5)
        rec.finalize(stream_length=12)
        assert rec.boundaries() == [2, 7]

    def test_invalid_inputs(self):
        rec = SegmentationRecorder()
        with pytest.raises(Exception):
            rec.on_period_start(-1, 3)
        with pytest.raises(Exception):
            rec.on_period_start(0, 0)


class TestSegmentStream:
    def test_segment_stream_with_event_detector(self):
        stream = np.tile([7, 8, 9, 10, 11], 40)
        detector = EventPeriodicityDetector(EventDetectorConfig(window_size=32))
        segments, periods = segment_stream(stream, detector)
        assert periods == [5]
        lengths = {s.length for s in segments[:-1]}
        assert lengths == {5}

    def test_segment_boundaries_helper(self):
        results = [
            DetectionResult(index=i, period=3, is_period_start=(i % 3 == 0), new_detection=False, confidence=1.0)
            for i in range(9)
        ]
        assert segment_boundaries(results) == [0, 3, 6]
