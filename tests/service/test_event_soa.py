"""Tests for the event-mode structure-of-arrays bank (EventSoABank).

Acceptance criterion of the sharding PR: event-mode lockstep through
``EventSoABank`` is bit-for-bit equivalent to standalone
``EventPeriodicityDetector`` instances — same locks, same detected
periods, same profiles.
"""

import numpy as np
import pytest

from repro.core.events import EventDetectorConfig, EventPeriodicityDetector
from repro.service.event_soa import EventSoABank
from repro.traces.synthetic import repeat_pattern
from repro.util.validation import ValidationError


def event_trace(period: int, length: int, base: int) -> np.ndarray:
    return repeat_pattern(base + np.arange(period), length)


def reference_results(config, trace):
    det = EventPeriodicityDetector(config)
    starts = [
        (r.index, r.period, r.new_detection)
        for r in det.process(trace)
        if r.is_period_start and r.period
    ]
    return starts, det


class TestConstruction:
    def test_requires_streams(self):
        with pytest.raises(ValidationError):
            EventSoABank([], EventDetectorConfig())

    def test_requires_unique_ids(self):
        with pytest.raises(ValidationError):
            EventSoABank(["a", "a"], EventDetectorConfig())

    def test_step_requires_one_event_per_stream(self):
        bank = EventSoABank(["a", "b"], EventDetectorConfig(window_size=16))
        with pytest.raises(ValidationError):
            bank.step([1])

    def test_process_requires_matching_matrix(self):
        bank = EventSoABank(["a"], EventDetectorConfig(window_size=16))
        with pytest.raises(ValidationError):
            bank.process(np.zeros((2, 10), dtype=np.int64))


class TestEquivalence:
    @pytest.mark.parametrize(
        "config",
        [
            EventDetectorConfig(window_size=32),
            EventDetectorConfig(window_size=48, max_lag=20, min_lag=2, min_repetitions=3),
            EventDetectorConfig(window_size=24, require_full_window=True, loss_patience=2),
            EventDetectorConfig(window_size=40, loss_patience=1),
        ],
    )
    def test_bank_equals_standalone_detectors(self, config):
        rng = np.random.default_rng(7)
        traces = [
            event_trace(4, 220, base=100),           # simple periodic
            repeat_pattern(np.array([7, 7, 9]), 220),  # repeated values inside the period
            rng.integers(0, 40, size=220),           # aperiodic
            np.full(220, 42),                        # constant (period 1)
            np.concatenate(                          # lock, lose, re-lock
                [
                    event_trace(5, 80, base=0),
                    rng.integers(1000, 2000, size=60),
                    event_trace(3, 80, base=500),
                ]
            ),
        ]
        matrix = np.stack([np.asarray(t, dtype=np.int64) for t in traces])
        bank = EventSoABank([f"s{i}" for i in range(len(traces))], config)
        raw = bank.process(matrix)

        for pos, trace in enumerate(traces):
            expected, det = reference_results(config, trace)
            got = [(i, p, n) for (b, i, p, c, n) in raw if b == pos]
            assert got == expected, pos
            assert bank.current_period(pos) == det.current_period
            assert bank.detected_periods(pos) == det.detected_periods
            np.testing.assert_array_equal(bank.profiles()[pos], det.profile())

    def test_snapshot_matches_standalone_exactly(self):
        config = EventDetectorConfig(window_size=32)
        trace = event_trace(6, 150, base=10)
        bank = EventSoABank(["only"], config)
        det = EventPeriodicityDetector(config)
        for value in trace:
            bank.step([value])
            det.update(int(value))
        ours, theirs = bank.snapshot_stream(0), det.snapshot()
        assert set(ours) == set(theirs)
        for key, expected in theirs.items():
            if isinstance(expected, np.ndarray):
                np.testing.assert_array_equal(ours[key], expected, err_msg=key)
            else:
                assert ours[key] == expected, key

    def test_snapshot_handoff_resumes_identically(self):
        config = EventDetectorConfig(window_size=40)
        head = event_trace(6, 130, base=0)
        tail = event_trace(9, 130, base=50)
        bank = EventSoABank(["a"], config)
        reference = EventPeriodicityDetector(config)
        for value in head:
            bank.step([value])
            reference.update(int(value))

        engine = bank.to_engine(0)
        got = [(r.index, r.period, r.is_period_start) for r in engine.process(tail)]
        expected = [(r.index, r.period, r.is_period_start) for r in reference.process(tail)]
        assert got == expected

    def test_confidence_is_binary_like_standalone(self):
        config = EventDetectorConfig(window_size=24)
        bank = EventSoABank(["a"], config)
        confidences = set()
        for value in event_trace(3, 90, base=1):
            for (_, _, confidence, _) in bank.step([value]):
                confidences.add(confidence)
        assert confidences <= {1.0}
