"""Bank residency: lockstep fleets stay on the SoA bank across calls.

The service-layer half of the wire-hot-path PR: the first lockstep call
over a fresh homogeneous fleet builds a structure-of-arrays bank and
leaves its streams *resident* on it, so repeated chunked lockstep calls
(the shape the server's hot frames produce) advance the same bank
incrementally instead of paying per-stream engine dispatch — with
event streams' results identical chunk-for-chunk to the one-shot and
per-stream paths, sequence numbers included.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.service.pool import DetectorPool, PoolConfig, _BankResident
from repro.traces.synthetic import repeat_pattern


def config(**overrides) -> PoolConfig:
    options = dict(mode="event", window_size=32)
    options.update(overrides)
    return PoolConfig(**options)


def fleet(streams: int, samples: int) -> dict[str, np.ndarray]:
    return {
        f"s-{i}": repeat_pattern(10 * (i + 1) + np.arange(3 + i % 5), samples)
        for i in range(streams)
    }


def keyed(events):
    per_stream: dict[str, list] = {}
    for e in events:
        per_stream.setdefault(e.stream_id, []).append(
            (e.index, e.period, e.new_detection, e.seq)
        )
    return per_stream


def chunks(traces: dict[str, np.ndarray], size: int):
    total = len(next(iter(traces.values())))
    for offset in range(0, total, size):
        yield {sid: v[offset : offset + size] for sid, v in traces.items()}


class TestResidencyEquivalence:
    def test_chunked_lockstep_matches_one_shot_and_per_stream(self):
        traces = fleet(8, 160)

        one_shot = DetectorPool(config())
        a = keyed(one_shot.ingest_lockstep(traces))
        assert one_shot.stats().lockstep_backend == "soa"

        chunked = DetectorPool(config())
        events = []
        for chunk in chunks(traces, 40):
            events.extend(chunked.ingest_lockstep(chunk))
        assert keyed(events) == a
        assert chunked.stats().lockstep_backend == "soa"

        per_stream = DetectorPool(config(soa_min_streams=10_000))
        b = keyed(per_stream.ingest_lockstep(traces))
        assert per_stream.stats().lockstep_backend == "per-stream"
        assert b == a

    def test_streams_stay_resident_between_chunks(self):
        pool = DetectorPool(config())
        traces = fleet(6, 120)
        first = True
        for chunk in chunks(traces, 30):
            pool.ingest_lockstep(chunk)
            handles = [pool._streams[sid].engine for sid in traces]
            assert all(isinstance(h, _BankResident) for h in handles)
            banks = {id(h.bank) for h in handles}
            assert len(banks) == 1  # one shared bank for the whole fleet
            if first:
                shared = banks.pop()
                first = False
            else:
                assert banks == {shared}  # the *same* bank, chunk after chunk

    def test_ingest_many_autoroutes_equal_length_fleets(self):
        """The ingest_many shape the hot wire frames produce hits the bank."""
        traces = fleet(8, 160)
        pool = DetectorPool(config())
        events = []
        for chunk in chunks(traces, 40):
            events.extend(pool.ingest_many(chunk))
        assert pool.stats().lockstep_backend == "soa"

        direct = DetectorPool(config()).ingest_lockstep(traces)
        assert keyed(events) == keyed(direct)

    def test_autoroute_never_reports_per_stream_spuriously(self):
        """A bank-ineligible ingest_many must not flip the backend stat."""
        pool = DetectorPool(config())
        ragged = {"a": np.arange(10), "b": np.arange(7)}  # unequal lengths
        pool.ingest_many(ragged)
        assert pool.stats().lockstep_backend is None


class TestResidencyDissolution:
    def test_per_stream_touch_materialises_and_detaches(self):
        pool = DetectorPool(config())
        traces = fleet(6, 96)
        resident = keyed(pool.ingest_lockstep(traces))

        # Touching one stream on its own materialises a standalone engine
        # without losing any state...
        extra = repeat_pattern(10 + np.arange(3), 32)
        a = keyed(pool.ingest("s-0", extra))
        assert not isinstance(pool._streams["s-0"].engine, _BankResident)

        # ...and matches a pool that ran the same schedule per-stream.
        ref = DetectorPool(config(soa_min_streams=10_000))
        ref_events = keyed(ref.ingest_lockstep(traces))
        assert ref_events == resident
        b = keyed(ref.ingest("s-0", extra))
        assert a == b

    def test_dissolved_fleet_falls_back_without_corruption(self):
        """After a partial touch, lockstep keeps working via per-stream."""
        pool = DetectorPool(config())
        traces = fleet(6, 64)
        pool.ingest_lockstep(traces)
        pool.ingest("s-2", repeat_pattern(30 + np.arange(5), 16))

        follow_up = {sid: v[:32] for sid, v in fleet(6, 64).items()}
        ref = DetectorPool(config(soa_min_streams=10_000))
        ref.ingest_lockstep(traces)
        ref.ingest("s-2", repeat_pattern(30 + np.arange(5), 16))
        assert keyed(pool.ingest_lockstep(follow_up)) == keyed(
            ref.ingest_lockstep(follow_up)
        )

    def test_eviction_disqualifies_the_bank(self):
        """An LRU-evicted member forces the fleet off the resident path."""
        pool = DetectorPool(config(max_streams=8))
        traces = fleet(6, 64)
        pool.ingest_lockstep(traces)
        # Pushing unrelated streams evicts the oldest fleet members.
        for i in range(8):
            pool.ingest(f"other-{i}", repeat_pattern(50 + np.arange(4), 16))
        assert pool._resident_bank(list(traces)) is None
        # A fresh lockstep over the fleet still works (rebuild or fallback).
        assert pool.ingest_lockstep(
            {sid: v[:32] for sid, v in fleet(6, 64).items()}
        ) is not None

    def test_remove_stream_of_resident_member(self):
        pool = DetectorPool(config())
        traces = fleet(6, 64)
        pool.ingest_lockstep(traces)
        assert pool.remove_stream("s-3") is True
        assert pool._resident_bank(list(traces)) is None
        remaining = {sid: v[:32] for sid, v in fleet(6, 64).items() if sid != "s-3"}
        assert pool.ingest_lockstep(remaining) is not None


class TestMagnitudeResidency:
    def test_magnitude_fleet_stays_resident_and_equivalent(self):
        from repro.core.detector import DetectorConfig
        from repro.traces.synthetic import periodic_signal

        cfg = PoolConfig(
            mode="magnitude",
            detector_config=DetectorConfig(window_size=64, evaluation_interval=4),
        )
        traces = {
            f"m-{i}": periodic_signal(3 + i % 7, 256, seed=i) for i in range(8)
        }
        chunked = DetectorPool(cfg)
        events = []
        for chunk in chunks(traces, 64):
            events.extend(chunked.ingest_lockstep(chunk))
        assert chunked.stats().lockstep_backend == "soa"
        one_shot = DetectorPool(cfg)
        assert keyed(events) == keyed(one_shot.ingest_lockstep(traces))
        for sid in traces:
            assert chunked.current_period(sid) == one_shot.current_period(sid)
