"""Tests of the thread-safe facade and the pool's event fan-out hooks."""

import threading

import numpy as np
import pytest

from repro.service.facade import ThreadSafePool
from repro.service.pool import DetectorPool, PoolConfig
from repro.traces.synthetic import repeat_pattern
from repro.util.validation import ValidationError


def config(**overrides) -> PoolConfig:
    options = dict(mode="event", window_size=32)
    options.update(overrides)
    return PoolConfig(**options)


class TestPoolListeners:
    def test_ingest_notifies_listeners_with_returned_events(self):
        pool = DetectorPool(config())
        seen = []
        pool.add_listener(seen.append)
        events = pool.ingest("app", np.tile(np.arange(4), 30))
        assert seen == [events]

    def test_ingest_one_and_lockstep_notify(self):
        pool = DetectorPool(config())
        batches = []
        pool.add_listener(batches.append)
        trace = np.tile(np.arange(3), 20)
        for value in trace:
            pool.ingest_one("solo", int(value))
        solo_events = [e for batch in batches for e in batch]
        assert all(e.stream_id == "solo" for e in solo_events)
        assert solo_events  # the periodic stream fired

        batches.clear()
        traces = {f"s{i}": repeat_pattern(100 * (i + 1) + np.arange(4), 64) for i in range(6)}
        lockstep_events = pool.ingest_lockstep(traces)
        assert [e for batch in batches for e in batch] == lockstep_events

    def test_no_notification_for_empty_batches(self):
        pool = DetectorPool(config())
        seen = []
        pool.add_listener(seen.append)
        pool.ingest("app", np.arange(10))  # aperiodic: no events
        assert seen == []

    def test_remove_listener(self):
        pool = DetectorPool(config())
        listener = lambda events: None  # noqa: E731
        pool.add_listener(listener)
        assert pool.remove_listener(listener) is True
        assert pool.remove_listener(listener) is False
        seen = []
        pool.add_listener(seen.append)
        pool.remove_listener(seen.append)
        pool.ingest("app", np.tile(np.arange(4), 30))
        assert seen == []  # removed listeners are not called

    def test_listener_must_be_callable(self):
        with pytest.raises(ValidationError):
            DetectorPool(config()).add_listener("not callable")


class TestIngestMany:
    def test_matches_sequential_ingest(self):
        traces = {
            f"s{i}": repeat_pattern(100 * (i + 1) + np.arange(3 + i), 96)
            for i in range(4)
        }
        a, b = DetectorPool(config()), DetectorPool(config())
        many = a.ingest_many(traces)
        sequential = []
        for sid, values in traces.items():
            sequential.extend(b.ingest(sid, values))
        assert many == sequential


class TestThreadSafePool:
    def test_uniform_interface_over_plain_pool(self):
        facade = ThreadSafePool(DetectorPool(config()))
        trace = np.tile(np.arange(4), 30)
        events = facade.ingest("app", trace)
        assert facade.current_period("app") == 4
        assert "app" in facade
        assert len(facade) == 1
        assert facade.stream_ids == ["app"]
        assert facade.stats().total_events == len(events)
        assert facade.stream_stats("app").samples == trace.size

    def test_facade_listeners_see_all_ingest_paths(self):
        facade = ThreadSafePool(DetectorPool(config()))
        batches = []
        facade.add_listener(batches.append)
        events = facade.ingest("app", np.tile(np.arange(4), 30))
        traces = {f"s{i}": repeat_pattern(100 * (i + 1) + np.arange(4), 64) for i in range(6)}
        lockstep = facade.ingest_lockstep(traces)
        many = facade.ingest_many({"app": np.tile(np.arange(4), 10)})
        flattened = [e for batch in batches for e in batch]
        assert flattened == events + lockstep + many

    def test_snapshot_restore_remove_roundtrip(self):
        facade = ThreadSafePool(DetectorPool(config()))
        trace = np.tile(np.arange(5), 40)
        facade.ingest("app", trace)
        states = facade.snapshot_streams(["app", "missing"])
        assert list(states) == ["app"]
        assert states["app"]["samples"] == trace.size
        assert facade.remove_streams(["app", "missing"]) == 1
        facade.restore_stream(
            "app",
            states["app"]["state"],
            samples=states["app"]["samples"],
            events=states["app"]["events"],
        )
        assert facade.current_period("app") == 5
        assert facade.streams_with_prefix("ap") == ["app"]

    def test_concurrent_ingest_is_serialised(self):
        facade = ThreadSafePool(DetectorPool(config()))
        trace = np.tile(np.arange(4), 50)
        errors = []

        def worker(name: str) -> None:
            try:
                for offset in range(0, trace.size, 20):
                    facade.ingest(name, trace[offset : offset + 20])
            except Exception as exc:  # pragma: no cover - the test assertion
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(f"t{i}",)) for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        stats = facade.stats()
        assert stats.total_samples == 8 * trace.size
        assert all(facade.current_period(f"t{i}") == 4 for i in range(8))

    def test_close_is_idempotent_and_context_managed(self):
        facade = ThreadSafePool(DetectorPool(config()))
        with facade:
            facade.ingest("app", [1, 2, 3])
        facade.close()  # second close: no-op


class TestPipelineCollection:
    def test_plain_pool_flush_and_collect_are_noops(self):
        facade = ThreadSafePool(DetectorPool(mode="event", window_size=32))
        facade.ingest("app", [7, 8, 9] * 8)
        assert facade.collect() == []
        assert facade.flush() == []

    def test_flush_delivers_to_listeners(self):
        class FakePipelinedPool:
            def __init__(self):
                self.closed = False

            def flush(self):
                from repro.service.events import PeriodStartEvent

                return [PeriodStartEvent("s", 1, 3, 1.0, True)]

            def collect(self):
                return []

            def close(self):
                self.closed = True

        facade = ThreadSafePool(FakePipelinedPool())
        seen = []
        facade.add_listener(seen.extend)
        events = facade.flush()
        assert [e.stream_id for e in events] == ["s"]
        assert seen == events
