"""Tests for the structure-of-arrays lockstep bank (MagnitudeSoABank)."""

import numpy as np
import pytest

from repro.core.detector import DetectorConfig, DynamicPeriodicityDetector
from repro.core.window import AdaptiveWindowPolicy
from repro.service.soa import MagnitudeSoABank
from repro.traces.synthetic import noisy_periodic_signal, periodic_signal
from repro.util.validation import ValidationError


def reference_starts(config, trace):
    det = DynamicPeriodicityDetector(config)
    return [
        (r.index, r.period, r.new_detection)
        for r in det.process(trace)
        if r.is_period_start and r.period
    ], det


class TestConstruction:
    def test_requires_streams(self):
        with pytest.raises(ValidationError):
            MagnitudeSoABank([], DetectorConfig())

    def test_requires_unique_ids(self):
        with pytest.raises(ValidationError):
            MagnitudeSoABank(["a", "a"], DetectorConfig())

    def test_rejects_adaptive_windows(self):
        config = DetectorConfig(adaptive_window=AdaptiveWindowPolicy())
        with pytest.raises(ValidationError):
            MagnitudeSoABank(["a"], config)

    def test_step_requires_one_sample_per_stream(self):
        bank = MagnitudeSoABank(["a", "b"], DetectorConfig(window_size=16))
        with pytest.raises(ValidationError):
            bank.step([1.0])


class TestEquivalence:
    @pytest.mark.parametrize(
        "config",
        [
            DetectorConfig(window_size=32),
            DetectorConfig(window_size=48, evaluation_interval=3, refresh_interval=11),
            DetectorConfig(window_size=24, max_lag=10, min_lag=2, min_fill=6),
        ],
    )
    def test_bank_equals_standalone_detectors(self, config):
        rng = np.random.default_rng(5)
        traces = [
            noisy_periodic_signal(4, 200, noise_std=0.05, seed=1),
            periodic_signal(7, 200, seed=2),
            rng.normal(size=200),  # aperiodic
            np.zeros(200),  # degenerate constant stream
        ]
        matrix = np.stack(traces)
        bank = MagnitudeSoABank([f"s{i}" for i in range(len(traces))], config)
        raw = bank.process(matrix)

        for pos, trace in enumerate(traces):
            expected, det = reference_starts(config, trace)
            got = [(i, p, n) for (b, i, p, c, n) in raw if b == pos]
            assert got == expected, pos
            assert bank.current_period(pos) == det.current_period
            assert bank.detected_periods(pos) == det.detected_periods

    def test_profiles_match_standalone(self):
        config = DetectorConfig(window_size=32, refresh_interval=13)
        trace = noisy_periodic_signal(5, 100, noise_std=0.1, seed=3)
        bank = MagnitudeSoABank(["only"], config)
        det = DynamicPeriodicityDetector(config)
        for value in trace:
            bank.step([value])
            det.update(value)
        np.testing.assert_allclose(
            bank.profiles()[0], det.profile(), atol=1e-9, equal_nan=True
        )

    def test_snapshot_handoff_resumes_identically(self):
        config = DetectorConfig(window_size=40, evaluation_interval=2)
        head = noisy_periodic_signal(6, 150, noise_std=0.05, seed=4)
        tail = noisy_periodic_signal(9, 150, noise_std=0.05, seed=5)
        bank = MagnitudeSoABank(["a"], config)
        reference = DynamicPeriodicityDetector(config)
        for value in head:
            bank.step([value])
            reference.update(value)

        engine = bank.to_engine(0)
        got = [(r.index, r.period, r.is_period_start) for r in engine.process(tail)]
        expected = [(r.index, r.period, r.is_period_start) for r in reference.process(tail)]
        assert got == expected

    def test_refresh_interval_cancels_drift(self):
        # Large magnitudes + frequent refresh: the incremental sums must
        # track the exact recompute across many refresh boundaries.
        config = DetectorConfig(window_size=32, refresh_interval=8)
        trace = 1e9 + noisy_periodic_signal(4, 300, noise_std=0.01, seed=6)
        bank = MagnitudeSoABank(["a"], config)
        det = DynamicPeriodicityDetector(config)
        for value in trace:
            bank.step([value])
            det.update(value)
        np.testing.assert_allclose(
            bank.snapshot_stream(0)["sums"], det.snapshot()["sums"], rtol=1e-9
        )
