"""Tests for the structure-of-arrays lockstep bank (MagnitudeSoABank)."""

import numpy as np
import pytest

from repro.core.detector import DetectorConfig, DynamicPeriodicityDetector
from repro.core.window import AdaptiveWindowPolicy
from repro.service.soa import MagnitudeSoABank
from repro.traces.synthetic import noisy_periodic_signal, periodic_signal
from repro.util.validation import ValidationError


def reference_starts(config, trace):
    det = DynamicPeriodicityDetector(config)
    return [
        (r.index, r.period, r.new_detection)
        for r in det.process(trace)
        if r.is_period_start and r.period
    ], det


class TestConstruction:
    def test_requires_streams(self):
        with pytest.raises(ValidationError):
            MagnitudeSoABank([], DetectorConfig())

    def test_requires_unique_ids(self):
        with pytest.raises(ValidationError):
            MagnitudeSoABank(["a", "a"], DetectorConfig())

    def test_rejects_adaptive_windows(self):
        config = DetectorConfig(adaptive_window=AdaptiveWindowPolicy())
        with pytest.raises(ValidationError):
            MagnitudeSoABank(["a"], config)

    def test_step_requires_one_sample_per_stream(self):
        bank = MagnitudeSoABank(["a", "b"], DetectorConfig(window_size=16))
        with pytest.raises(ValidationError):
            bank.step([1.0])


class TestEquivalence:
    @pytest.mark.parametrize(
        "config",
        [
            DetectorConfig(window_size=32),
            DetectorConfig(window_size=48, evaluation_interval=3, refresh_interval=11),
            DetectorConfig(window_size=24, max_lag=10, min_lag=2, min_fill=6),
        ],
    )
    def test_bank_equals_standalone_detectors(self, config, kernel_backend):
        rng = np.random.default_rng(5)
        traces = [
            noisy_periodic_signal(4, 200, noise_std=0.05, seed=1),
            periodic_signal(7, 200, seed=2),
            rng.normal(size=200),  # aperiodic
            np.zeros(200),  # degenerate constant stream
        ]
        matrix = np.stack(traces)
        bank = MagnitudeSoABank([f"s{i}" for i in range(len(traces))], config)
        raw = bank.process(matrix)

        for pos, trace in enumerate(traces):
            expected, det = reference_starts(config, trace)
            got = [(i, p, n) for (b, i, p, c, n) in raw if b == pos]
            assert got == expected, pos
            assert bank.current_period(pos) == det.current_period
            assert bank.detected_periods(pos) == det.detected_periods

    def test_profiles_match_standalone(self):
        config = DetectorConfig(window_size=32, refresh_interval=13)
        trace = noisy_periodic_signal(5, 100, noise_std=0.1, seed=3)
        bank = MagnitudeSoABank(["only"], config)
        det = DynamicPeriodicityDetector(config)
        for value in trace:
            bank.step([value])
            det.update(value)
        np.testing.assert_allclose(
            bank.profiles()[0], det.profile(), atol=1e-9, equal_nan=True
        )

    def test_snapshot_handoff_resumes_identically(self):
        config = DetectorConfig(window_size=40, evaluation_interval=2)
        head = noisy_periodic_signal(6, 150, noise_std=0.05, seed=4)
        tail = noisy_periodic_signal(9, 150, noise_std=0.05, seed=5)
        bank = MagnitudeSoABank(["a"], config)
        reference = DynamicPeriodicityDetector(config)
        for value in head:
            bank.step([value])
            reference.update(value)

        engine = bank.to_engine(0)
        got = [(r.index, r.period, r.is_period_start) for r in engine.process(tail)]
        expected = [(r.index, r.period, r.is_period_start) for r in reference.process(tail)]
        assert got == expected

    def test_refresh_interval_cancels_drift(self):
        # Large magnitudes + frequent refresh: the incremental sums must
        # track the exact recompute across many refresh boundaries.
        config = DetectorConfig(window_size=32, refresh_interval=8)
        trace = 1e9 + noisy_periodic_signal(4, 300, noise_std=0.01, seed=6)
        bank = MagnitudeSoABank(["a"], config)
        det = DynamicPeriodicityDetector(config)
        for value in trace:
            bank.step([value])
            det.update(value)
        np.testing.assert_allclose(
            bank.snapshot_stream(0)["sums"], det.snapshot()["sums"], rtol=1e-9
        )


class TestChunkedProcess:
    """The chunked columnar hot loop must be bit-for-bit the per-step path."""

    @pytest.mark.parametrize(
        "config",
        [
            # chunk boundaries: eval 1 (degenerate chunks), eval > refresh,
            # refresh mid-eval-stride, max_lag well below the window.
            DetectorConfig(window_size=32, evaluation_interval=1, refresh_interval=7),
            DetectorConfig(window_size=40, evaluation_interval=16, refresh_interval=6),
            DetectorConfig(window_size=24, evaluation_interval=5, refresh_interval=256),
            DetectorConfig(window_size=48, max_lag=9, min_lag=3, evaluation_interval=4),
            DetectorConfig(window_size=16, evaluation_interval=3, loss_patience=1),
        ],
    )
    def test_process_equals_scalar_engines_exactly(self, config, kernel_backend):
        rng = np.random.default_rng(11)
        traces = [
            noisy_periodic_signal(5, 260, noise_std=0.05, seed=21),
            periodic_signal(9, 260, seed=22),
            rng.normal(size=260),
            np.zeros(260),
        ]
        bank = MagnitudeSoABank([f"s{i}" for i in range(len(traces))], config)
        raw = bank.process(np.stack(traces))
        for pos, trace in enumerate(traces):
            det = DynamicPeriodicityDetector(config)
            expected = [
                (r.index, r.period, r.confidence, r.new_detection)
                for r in det.process(trace)
                if r.is_period_start and r.period
            ]
            got = [(i, p, c, n) for (b, i, p, c, n) in raw if b == pos]
            assert got == expected, pos
            # State equality is exact, floats included: the chunked pass
            # applies the same per-step terms in the same order.
            snap_bank, snap_det = bank.snapshot_stream(pos), det.snapshot()
            assert np.array_equal(snap_bank["sums"], snap_det["sums"])
            assert np.array_equal(snap_bank["buffer"], snap_det["buffer"])
            assert snap_bank["lock"] == snap_det["lock"]
            assert snap_bank["since_refresh"] == snap_det["since_refresh"]

    def test_step_and_process_interleave(self, kernel_backend):
        # Mixing the per-step compat path with chunked process() calls on
        # one bank must equal one straight per-step run.
        config = DetectorConfig(window_size=32, evaluation_interval=4, refresh_interval=19)
        trace = noisy_periodic_signal(6, 240, noise_std=0.1, seed=31)
        mixed = MagnitudeSoABank(["a"], config)
        events = []
        cursor = 0
        for span, use_step in ((50, True), (70, False), (1, True), (119, False)):
            block = trace[cursor : cursor + span]
            if use_step:
                for value in block:
                    index = mixed.samples_seen
                    events.extend(
                        (pos, index, p, c, n) for pos, p, c, n in mixed.step([value])
                    )
            else:
                events.extend(mixed.process(block[None, :]))
            cursor += span
        straight = MagnitudeSoABank(["a"], config)
        expected = straight.process(trace[None, :])
        assert events == expected
        assert np.array_equal(
            mixed.snapshot_stream(0)["sums"], straight.snapshot_stream(0)["sums"]
        )

    def test_profiles_returns_a_safe_copy(self):
        config = DetectorConfig(window_size=16)
        bank = MagnitudeSoABank(["a"], config)
        for value in periodic_signal(4, 40, seed=1):
            bank.step([value])
        first = bank.profiles()
        kept = first.copy()
        for value in periodic_signal(4, 8, seed=2):
            bank.step([value])
        bank.profiles()
        np.testing.assert_array_equal(first, kept)  # scratch reuse stays private
