"""Child-process entry points for the spawn-context snapshot tests.

Lives in its own module (not the test file) so a ``spawn``-context child
can import it by name: spawn re-imports the function's module, and test
modules themselves are not importable from a fresh interpreter.
"""

from __future__ import annotations


def continue_from_snapshot(state: dict, mode: str, options: dict, tail, out):
    """Restore an engine from ``state``, feed ``tail``, send results back."""
    from repro.core.engine import make_engine

    engine = make_engine(mode, **options)
    engine.restore(state)
    results = [
        (r.index, r.period, r.is_period_start, r.new_detection)
        for r in engine.update_batch(tail)
    ]
    out.send({
        "results": results,
        "current_period": engine.current_period,
        "detected_periods": engine.detected_periods,
        "snapshot": engine.snapshot(),
    })
    out.close()
