"""Snapshot round-trip coverage: across process boundaries and SoA banks.

The sharded service moves detector state between processes exclusively
through the engine ``snapshot`` / ``restore`` protocol, so these tests
pin down its three load-bearing properties:

* a snapshot restored in a *spawn-context* child process (fresh
  interpreter, nothing inherited) continues the stream identically;
* bank -> ``snapshot_stream`` -> standalone engine -> ``snapshot`` ->
  ``restore_stream`` -> bank is lossless, with identical locks and
  profiles at every hop;
* the version field rejects snapshots from a newer format.
"""

import multiprocessing

import numpy as np
import pytest

from repro.core.detector import DetectorConfig, DynamicPeriodicityDetector
from repro.core.engine import SNAPSHOT_VERSION, make_engine
from repro.core.events import EventDetectorConfig, EventPeriodicityDetector
from repro.service.event_soa import EventSoABank
from repro.service.soa import MagnitudeSoABank
from repro.traces.synthetic import noisy_periodic_signal, repeat_pattern
from repro.util.validation import ValidationError

from _spawn_helpers import continue_from_snapshot


class TestCrossProcessRoundtrip:
    """engine -> snapshot -> restore in a spawn-context child process."""

    @pytest.mark.parametrize(
        "mode, options, head, tail",
        [
            (
                "magnitude",
                {"window_size": 48, "evaluation_interval": 2},
                noisy_periodic_signal(6, 150, noise_std=0.05, seed=1),
                noisy_periodic_signal(6, 120, noise_std=0.05, seed=2),
            ),
            (
                "event",
                {"window_size": 32},
                repeat_pattern(100 + np.arange(5), 140),
                repeat_pattern(100 + np.arange(5), 90),
            ),
        ],
    )
    def test_spawned_child_continues_identically(self, mode, options, head, tail):
        parent_engine = make_engine(mode, **options)
        parent_engine.update_batch(head)
        state = parent_engine.snapshot()

        ctx = multiprocessing.get_context("spawn")
        recv, send = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=continue_from_snapshot,
            args=(state, mode, options, np.asarray(tail), send),
        )
        proc.start()
        send.close()
        try:
            child = recv.recv()
        finally:
            proc.join(timeout=30)
        assert proc.exitcode == 0

        reference = [
            (r.index, r.period, r.is_period_start, r.new_detection)
            for r in parent_engine.update_batch(tail)
        ]
        assert child["results"] == reference
        assert child["current_period"] == parent_engine.current_period
        assert child["detected_periods"] == parent_engine.detected_periods
        theirs = parent_engine.snapshot()
        for key, expected in theirs.items():
            got = child["snapshot"][key]
            if isinstance(expected, np.ndarray):
                np.testing.assert_array_equal(got, expected, err_msg=key)
            else:
                assert got == expected, key


class TestBankRoundtrip:
    """SoA bank -> snapshot_stream -> engine -> snapshot -> back."""

    def test_magnitude_bank_engine_bank(self):
        config = DetectorConfig(window_size=40, evaluation_interval=2)
        traces = np.stack(
            [noisy_periodic_signal(4 + i, 160, noise_std=0.05, seed=i) for i in range(3)]
        )
        bank = MagnitudeSoABank(["a", "b", "c"], config)
        bank.process(traces)

        engine = DynamicPeriodicityDetector(config)
        engine.restore(bank.snapshot_stream(1))
        assert engine.current_period == bank.current_period(1)
        np.testing.assert_allclose(
            engine.profile(), bank.profiles()[1], atol=0, equal_nan=True
        )

        before = bank.snapshot_stream(1)
        bank.restore_stream(1, engine.snapshot())
        after = bank.snapshot_stream(1)
        for key, expected in before.items():
            if isinstance(expected, np.ndarray):
                np.testing.assert_array_equal(after[key], expected, err_msg=key)
            else:
                assert after[key] == expected, key

        # The round-tripped stream keeps detecting identically.
        tail = noisy_periodic_signal(5, 120, noise_std=0.05, seed=9)
        reference = DynamicPeriodicityDetector(config)
        reference.restore(before)
        expected_results = [
            (r.index, r.period, r.is_period_start) for r in reference.process(tail)
        ]
        roundtripped = bank.to_engine(1)
        got_results = [
            (r.index, r.period, r.is_period_start) for r in roundtripped.process(tail)
        ]
        assert got_results == expected_results

    def test_event_bank_engine_bank(self):
        config = EventDetectorConfig(window_size=32)
        traces = np.stack(
            [repeat_pattern(100 * (i + 1) + np.arange(3 + i), 150) for i in range(3)]
        ).astype(np.int64)
        bank = EventSoABank(["a", "b", "c"], config)
        bank.process(traces)

        engine = EventPeriodicityDetector(config)
        engine.restore(bank.snapshot_stream(2))
        assert engine.current_period == bank.current_period(2)
        np.testing.assert_array_equal(engine.profile(), bank.profiles()[2])

        before = bank.snapshot_stream(2)
        bank.restore_stream(2, engine.snapshot())
        after = bank.snapshot_stream(2)
        for key, expected in before.items():
            if isinstance(expected, np.ndarray):
                np.testing.assert_array_equal(after[key], expected, err_msg=key)
            else:
                assert after[key] == expected, key

    def test_restore_stream_rejects_out_of_lockstep_snapshot(self):
        config = DetectorConfig(window_size=32)
        bank = MagnitudeSoABank(["a"], config)
        for value in noisy_periodic_signal(4, 50, noise_std=0.01, seed=0):
            bank.step([value])
        lagging = DynamicPeriodicityDetector(config)
        lagging.update_batch(noisy_periodic_signal(4, 20, noise_std=0.01, seed=0))
        with pytest.raises(ValidationError):
            bank.restore_stream(0, lagging.snapshot())


class TestSnapshotVersioning:
    @pytest.mark.parametrize("mode", ["magnitude", "event"])
    def test_snapshots_are_tagged(self, mode):
        engine = make_engine(mode, window_size=16)
        assert engine.snapshot()["version"] == SNAPSHOT_VERSION

    @pytest.mark.parametrize("mode", ["magnitude", "event"])
    def test_future_version_rejected(self, mode):
        engine = make_engine(mode, window_size=16)
        engine.update_batch(list(range(8)))
        state = engine.snapshot()
        state["version"] = SNAPSHOT_VERSION + 1
        with pytest.raises(ValidationError):
            make_engine(mode, window_size=16).restore(state)

    @pytest.mark.parametrize("mode", ["magnitude", "event"])
    def test_unversioned_snapshot_accepted_as_v1(self, mode):
        engine = make_engine(mode, window_size=16)
        engine.update_batch(list(range(8)))
        state = engine.snapshot()
        del state["version"]
        clone = make_engine(mode, window_size=16)
        clone.restore(state)
        assert clone.samples_seen == engine.samples_seen

    def test_kind_mismatch_rejected(self):
        magnitude = make_engine("magnitude", window_size=16)
        with pytest.raises(ValidationError):
            make_engine("event", window_size=16).restore(magnitude.snapshot())
