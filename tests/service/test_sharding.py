"""Tests for the sharded multi-process detection service.

Acceptance criterion of the sharding PR: sharded results are
stream-for-stream identical to a single :class:`DetectorPool` run on the
same traces — the hash partition is pure routing.
"""

import numpy as np
import pytest

from repro.core.detector import DetectorConfig
from repro.service.pool import DetectorPool, PoolConfig
from repro.service.sharding import ShardedDetectorPool, ShardingConfig, shard_of
from repro.service.shm_ring import ShmSpanWriter
from repro.traces.synthetic import periodic_signal, repeat_pattern
from repro.util.validation import ValidationError


def magnitude_config(**overrides) -> PoolConfig:
    options = dict(window_size=64, evaluation_interval=4)
    options.update(overrides)
    return PoolConfig(mode="magnitude", detector_config=DetectorConfig(**options))


def magnitude_traces(streams: int, samples: int = 192) -> dict[str, np.ndarray]:
    return {
        f"s{i:03d}": periodic_signal(3 + i % 11, samples, seed=i)
        for i in range(streams)
    }


def event_traces(streams: int, samples: int = 160) -> dict[str, np.ndarray]:
    return {
        f"app-{i}": repeat_pattern(100 * (i + 1) + np.arange(3 + i % 7), samples)
        for i in range(streams)
    }


def single_pool_reference(config: PoolConfig, traces, chunk: int | None = None):
    pool = DetectorPool(config)
    events = []
    if chunk is None:
        for sid, trace in traces.items():
            events.extend(pool.ingest(sid, trace))
    else:
        length = len(next(iter(traces.values())))
        for offset in range(0, length, chunk):
            for sid, trace in traces.items():
                events.extend(pool.ingest(sid, trace[offset : offset + chunk]))
    return pool, events


def event_keys(events):
    return sorted((e.stream_id, e.index, e.period, e.new_detection) for e in events)


class TestStableHash:
    def test_shard_of_is_stable(self):
        # crc32-based routing must never change across runs/processes:
        # these values are frozen on purpose.
        assert shard_of("app-0", 4) == 3
        assert shard_of("app-1", 4) == 1
        assert shard_of("stream-0042", 4) == 2

    def test_all_shards_reachable(self):
        hits = {shard_of(f"s{i}", 3) for i in range(100)}
        assert hits == {0, 1, 2}


class TestShmSpanWriter:
    class _FakeShm:
        def __init__(self, size):
            self.size = size
            self.buf = memoryview(bytearray(size))

    def test_write_read_roundtrip(self):
        writer = ShmSpanWriter(self._FakeShm(256))
        data = np.arange(8, dtype=np.float64)
        offset, shape, dtype = writer.write(data)
        view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=writer._shm.buf, offset=offset)
        np.testing.assert_array_equal(view, data)

    def test_wraps_and_blocks(self):
        writer = ShmSpanWriter(self._FakeShm(64))
        a = np.arange(4, dtype=np.float64)  # 32 bytes
        writer.write(a)
        writer.write(a)  # ring now full
        with pytest.raises(BlockingIOError):
            writer.write(a)
        writer.release()
        # A wrapped span must stay strictly clear of the live tail at 32.
        offset, _, _ = writer.write(np.arange(3, dtype=np.float64))  # 24 bytes
        assert offset == 0
        writer.release()  # tail span gone; the ring drains fully
        writer.release()
        assert writer.outstanding == 0
        offset, _, _ = writer.write(a)
        assert offset == 0  # empty ring restarts from the origin

    def test_oversized_batch_rejected(self):
        writer = ShmSpanWriter(self._FakeShm(64))
        with pytest.raises(ValidationError):
            writer.write(np.zeros(64, dtype=np.float64))

    def test_release_without_span_rejected(self):
        writer = ShmSpanWriter(self._FakeShm(64))
        with pytest.raises(ValidationError):
            writer.release()


@pytest.fixture
def sharded_magnitude():
    pool = ShardedDetectorPool(magnitude_config(), workers=2)
    yield pool
    pool.close()


class TestShardedEquivalence:
    def test_ingest_many_matches_single_pool(self, sharded_magnitude):
        traces = magnitude_traces(16)
        reference, expected = single_pool_reference(magnitude_config(), traces)
        got = sharded_magnitude.ingest_many(traces)
        assert event_keys(got) == event_keys(expected)
        for sid in traces:
            assert sharded_magnitude.current_period(sid) == reference.current_period(sid)

    def test_chunked_round_robin_matches_single_pool(self, sharded_magnitude):
        traces = magnitude_traces(12, samples=160)
        reference, expected = single_pool_reference(magnitude_config(), traces, chunk=48)
        events = []
        for offset in range(0, 160, 48):
            events.extend(
                sharded_magnitude.ingest_many(
                    {sid: trace[offset : offset + 48] for sid, trace in traces.items()}
                )
            )
        assert event_keys(events) == event_keys(expected)
        for sid in traces:
            assert sharded_magnitude.current_period(sid) == reference.current_period(sid)

    def test_lockstep_matches_single_pool(self, sharded_magnitude):
        traces = magnitude_traces(16)
        single = DetectorPool(magnitude_config())
        expected = single.ingest_lockstep(traces)
        got = sharded_magnitude.ingest_lockstep(traces)
        assert event_keys(got) == event_keys(expected)
        for sid in traces:
            assert sharded_magnitude.current_period(sid) == single.current_period(sid)

    def test_event_mode_matches_single_pool(self):
        config = PoolConfig(mode="event", window_size=48)
        traces = event_traces(10)
        reference, expected = single_pool_reference(config, traces)
        with ShardedDetectorPool(config, workers=2) as pool:
            got = pool.ingest_many(traces)
            assert event_keys(got) == event_keys(expected)
            for sid in traces:
                assert pool.current_period(sid) == reference.current_period(sid)

    def test_tiny_ring_forces_chunking(self):
        # A ring smaller than the batch exercises the transparent
        # chunked-ingest path; results must be unchanged.
        traces = magnitude_traces(6, samples=256)
        reference, expected = single_pool_reference(magnitude_config(), traces)
        pool = ShardedDetectorPool(
            magnitude_config(), ShardingConfig(workers=2, ring_bytes=512)
        )
        try:
            got = pool.ingest_many(traces)
            assert event_keys(got) == event_keys(expected)
            for sid in traces:
                assert pool.current_period(sid) == reference.current_period(sid)
        finally:
            pool.close()

    def test_drain_to_pool_reconstructs_state(self, sharded_magnitude):
        traces = magnitude_traces(8)
        sharded_magnitude.ingest_many(traces)
        local = sharded_magnitude.drain_to_pool()
        reference, _ = single_pool_reference(magnitude_config(), traces)
        for sid in traces:
            assert local.current_period(sid) == reference.current_period(sid)
            np.testing.assert_allclose(
                local.engine(sid).snapshot()["sums"],
                reference.engine(sid).snapshot()["sums"],
                atol=1e-9,
            )
        assert local.stats().total_samples == reference.stats().total_samples


class TestStateManagement:
    def test_stats_aggregation(self, sharded_magnitude):
        traces = magnitude_traces(10)
        sharded_magnitude.ingest_many(traces)
        stats = sharded_magnitude.stats()
        assert stats.streams == 10
        assert stats.total_samples == 10 * 192
        assert stats.mode == "magnitude"
        assert len(sharded_magnitude) == 10
        assert sorted(sharded_magnitude.stream_ids) == sorted(traces)
        assert "s000" in sharded_magnitude
        per_stream = sharded_magnitude.stream_stats("s000")
        assert per_stream.samples == 192

    def test_crash_recovery_from_checkpoint(self, sharded_magnitude):
        traces = magnitude_traces(10)
        sharded_magnitude.ingest_many(traces)
        reference, _ = single_pool_reference(magnitude_config(), traces)
        sharded_magnitude.checkpoint()

        victim = sharded_magnitude._shards[0]
        victim.process.terminate()
        victim.process.join()

        # The next operation must transparently respawn and restore.
        for sid in traces:
            assert sharded_magnitude.current_period(sid) == reference.current_period(sid)
        assert sharded_magnitude.stats().total_samples == 10 * 192

    def test_mid_operation_crash_recovers_immediately(self, sharded_magnitude, monkeypatch):
        # A worker that dies while a request is in flight (not caught by
        # the pre-operation liveness check) must abort the call with a
        # clean error AND respawn/restore right away — not on the next call.
        pool = sharded_magnitude
        traces = magnitude_traces(8)
        pool.ingest_many(traces)
        reference, _ = single_pool_reference(magnitude_config(), traces)
        pool.checkpoint()

        victim = pool._shards[0]
        victim.process.terminate()
        victim.process.join()

        from repro.service.sharding import ShardedDetectorPool

        original = ShardedDetectorPool._ensure_alive
        calls = {"n": 0}

        def skip_first(self):
            calls["n"] += 1
            if calls["n"] == 1:
                return  # suppress the pre-op check: force the in-flight path
            return original(self)

        monkeypatch.setattr(ShardedDetectorPool, "_ensure_alive", skip_first)
        with pytest.raises(RuntimeError, match="died mid-operation"):
            pool.ingest_many(traces)
        assert calls["n"] >= 2  # the crash handler respawned inline
        assert all(shard.alive() for shard in pool._shards)
        assert not any(shard.events for shard in pool._shards)  # no stale events
        for sid in traces:
            assert pool.current_period(sid) == reference.current_period(sid)

    def test_crash_without_restore_flag_raises(self):
        pool = ShardedDetectorPool(
            magnitude_config(), ShardingConfig(workers=2, restore_on_crash=False)
        )
        try:
            pool.ingest_many(magnitude_traces(4))
            victim = pool._shards[1]
            victim.process.terminate()
            victim.process.join()
            with pytest.raises(RuntimeError):
                pool.stats()
        finally:
            pool.close()

    def test_rebalance_preserves_streams(self, sharded_magnitude):
        traces = magnitude_traces(12)
        sharded_magnitude.ingest_many(traces)
        reference, _ = single_pool_reference(magnitude_config(), traces)

        sharded_magnitude.rebalance(3)
        assert sharded_magnitude.workers == 3
        for sid in traces:
            assert sharded_magnitude.current_period(sid) == reference.current_period(sid)
        # Detection continues seamlessly after the move.
        more = {sid: periodic_signal(3 + i % 11, 64, seed=1000 + i)
                for i, sid in enumerate(traces)}
        sharded_magnitude.ingest_many(more)
        assert sharded_magnitude.stats().total_samples == 12 * (192 + 64)

    def test_restore_stream_routes_to_home_shard(self, sharded_magnitude):
        donor = DetectorPool(magnitude_config())
        trace = periodic_signal(7, 192, seed=1)
        donor.ingest("migrant", trace)
        state = donor.engine("migrant").snapshot()
        sharded_magnitude.restore_stream(
            "migrant", state, samples=192, events=donor.stream_stats("migrant").events
        )
        assert sharded_magnitude.current_period("migrant") == 7
        assert sharded_magnitude.stream_stats("migrant").samples == 192

    def test_closed_pool_rejects_operations(self):
        pool = ShardedDetectorPool(magnitude_config(), workers=2)
        pool.close()
        pool.close()  # idempotent
        with pytest.raises(ValidationError):
            pool.ingest("x", [1.0, 2.0])

    def test_spawn_context_end_to_end(self):
        config = PoolConfig(mode="event", window_size=32)
        traces = event_traces(6, samples=96)
        reference, expected = single_pool_reference(config, traces)
        pool = ShardedDetectorPool(
            config, ShardingConfig(workers=2, start_method="spawn")
        )
        try:
            got = pool.ingest_many(traces)
            assert event_keys(got) == event_keys(expected)
        finally:
            pool.close()


class TestCloseHardening:
    """Teardown paths must never raise: the network server closes the
    pool from drain logic, context managers and GC, possibly repeatedly."""

    def test_double_close_and_del_after_close(self):
        pool = ShardedDetectorPool(magnitude_config(), workers=2)
        pool.ingest("x", periodic_signal(5, 64, seed=0))
        pool.close()
        assert pool.closed
        pool.close()
        pool.close()
        pool.__del__()  # GC after close: must be a silent no-op

    def test_del_on_partially_constructed_instance(self):
        # __init__ can fail before any attribute exists (validation);
        # __del__ (and therefore close) must cope with the bare object.
        pool = ShardedDetectorPool.__new__(ShardedDetectorPool)
        pool.close()
        pool.__del__()

    def test_close_after_failed_init_releases_resources(self):
        with pytest.raises(ValidationError):
            ShardedDetectorPool(magnitude_config(), workers=0)

    def test_context_manager_exit_then_explicit_close(self):
        with ShardedDetectorPool(magnitude_config(), workers=2) as pool:
            pool.ingest("x", periodic_signal(5, 64, seed=0))
        pool.close()  # after __exit__: still silent

    def test_close_with_dead_worker_is_silent(self):
        pool = ShardedDetectorPool(magnitude_config(), workers=2)
        try:
            pool.ingest("x", periodic_signal(5, 64, seed=0))
            # Kill one worker behind the pool's back; close must still
            # shut the survivor down and free both rings without raising.
            pool._shards[0].process.terminate()
            pool._shards[0].process.join(timeout=10)
        finally:
            pool.close()
        pool.close()

    def test_operations_after_close_raise_cleanly(self):
        pool = ShardedDetectorPool(magnitude_config(), workers=2)
        pool.close()
        for operation in (
            lambda: pool.ingest("x", [1.0]),
            lambda: pool.ingest_many({"x": [1.0]}),
            lambda: pool.ingest_lockstep({"x": [1.0]}),
            lambda: pool.checkpoint(),
            lambda: pool.stats(),
            lambda: pool.remove_stream("x"),
        ):
            with pytest.raises(ValidationError):
                operation()


class TestTargetedStateOps:
    """Bulk/targeted parent ops: one round trip per shard, not per stream."""

    def test_snapshot_streams_subset(self):
        pool = ShardedDetectorPool(magnitude_config(), workers=2)
        try:
            traces = magnitude_traces(8)
            pool.ingest_many(traces)
            wanted = list(traces)[:3] + ["never-existed"]
            states = pool.snapshot_streams(wanted)
            assert sorted(states) == sorted(list(traces)[:3])
            for sid in states:
                assert states[sid]["samples"] == 192
                assert states[sid]["state"]["kind"] == "magnitude"
        finally:
            pool.close()

    def test_snapshot_streams_does_not_touch_crash_baseline(self):
        pool = ShardedDetectorPool(magnitude_config(), workers=2)
        try:
            traces = magnitude_traces(4)
            pool.ingest_many(traces)
            pool.snapshot_streams(list(traces))
            assert pool._checkpoint == {}  # only checkpoint() sets it
        finally:
            pool.close()

    def test_current_periods_matches_per_stream(self):
        pool = ShardedDetectorPool(magnitude_config(), workers=2)
        try:
            traces = magnitude_traces(8)
            pool.ingest_many(traces)
            bulk = pool.current_periods()
            assert sorted(bulk) == sorted(traces)
            for sid in traces:
                assert bulk[sid] == pool.current_period(sid)
        finally:
            pool.close()

    def test_facade_uses_targeted_ops_over_sharded_pool(self):
        from repro.service.facade import ThreadSafePool

        pool = ShardedDetectorPool(magnitude_config(), workers=2)
        facade = ThreadSafePool(pool)
        try:
            traces = magnitude_traces(6)
            facade.ingest_many(traces)
            sid = next(iter(traces))
            states = facade.snapshot_streams([sid])
            assert list(states) == [sid]
            assert facade.current_periods()[sid] == pool.current_period(sid)
        finally:
            facade.close()


def per_stream_sequences(events):
    """Events grouped per stream, order preserved (the pipelining invariant)."""
    out: dict[str, list] = {}
    for e in events:
        out.setdefault(e.stream_id, []).append(
            (e.index, e.period, e.confidence, e.new_detection)
        )
    return out


class TestPipelinedIngest:
    """pipeline_depth > 0: event-for-event identical to the synchronous path."""

    CHUNK = 48

    def _run(self, depth, traces, *, lockstep=False, workers=3):
        pool = ShardedDetectorPool(
            magnitude_config(), ShardingConfig(workers=workers, pipeline_depth=depth)
        )
        try:
            length = len(next(iter(traces.values())))
            events = []
            for offset in range(0, length, self.CHUNK):
                chunk = {sid: v[offset : offset + self.CHUNK] for sid, v in traces.items()}
                if lockstep:
                    events.extend(pool.ingest_lockstep(chunk))
                else:
                    events.extend(pool.ingest_many(chunk))
            events.extend(pool.flush())
            return events, pool.current_periods(), pool.stats()
        finally:
            pool.close()

    def test_validates_depth(self):
        with pytest.raises(ValidationError):
            ShardingConfig(pipeline_depth=-1)

    @pytest.mark.parametrize("lockstep", [False, True])
    def test_pipelined_equals_synchronous(self, lockstep):
        traces = magnitude_traces(12)
        sync_events, sync_periods, sync_stats = self._run(0, traces, lockstep=lockstep)
        pipe_events, pipe_periods, pipe_stats = self._run(3, traces, lockstep=lockstep)
        assert per_stream_sequences(pipe_events) == per_stream_sequences(sync_events)
        assert len(pipe_events) == len(sync_events)
        assert pipe_periods == sync_periods
        assert pipe_stats.total_samples == sync_stats.total_samples
        assert pipe_stats.total_events == sync_stats.total_events

    def test_collect_is_nonblocking_and_flush_is_terminal(self):
        traces = magnitude_traces(8)
        pool = ShardedDetectorPool(
            magnitude_config(), ShardingConfig(workers=2, pipeline_depth=4)
        )
        try:
            collected = []
            for offset in range(0, 192, self.CHUNK):
                chunk = {sid: v[offset : offset + self.CHUNK] for sid, v in traces.items()}
                collected.extend(pool.ingest_many(chunk))
                collected.extend(pool.collect())
            collected.extend(pool.flush())
            assert pool.collect() == []  # nothing outstanding after flush
            _, ref_events = single_pool_reference(
                magnitude_config(), traces, chunk=self.CHUNK
            )
            assert per_stream_sequences(collected) == per_stream_sequences(ref_events)
        finally:
            pool.close()

    def test_stateful_ops_drain_lazily(self):
        # A checkpoint right after pipelined ingests must observe every
        # sample (the shard call drains pending replies first), and the
        # drained events must not be lost — the next collect returns them.
        traces = magnitude_traces(9)
        pool = ShardedDetectorPool(
            magnitude_config(), ShardingConfig(workers=3, pipeline_depth=8)
        )
        try:
            sent = 0
            events = []
            for offset in range(0, 192, self.CHUNK):
                chunk = {sid: v[offset : offset + self.CHUNK] for sid, v in traces.items()}
                events.extend(pool.ingest_many(chunk))
                sent += sum(len(v) for v in chunk.values())
            checkpoint = pool.checkpoint()
            assert sum(entry["samples"] for entry in checkpoint.values()) == sent
            assert pool.stats().total_samples == sent
            # The drained events were retained, not lost: ingest returns
            # plus one collect cover everything the synchronous reference
            # produced.
            events.extend(pool.collect())
            _, ref_events = single_pool_reference(
                magnitude_config(), traces, chunk=self.CHUNK
            )
            assert per_stream_sequences(events) == per_stream_sequences(ref_events)
        finally:
            pool.close()

    def test_pipelined_crash_recovery_matches_synchronous(self):
        # Scripted scenario on both a synchronous and a pipelined pool:
        # phase A, checkpoint, worker killed, phase B through the
        # transparent respawn.  Both lose exactly the same state (the
        # checkpoint), so phase B must be event-for-event identical.
        phase_a = magnitude_traces(10)
        phase_b = {
            sid: periodic_signal(3 + i % 11, 96, seed=500 + i)
            for i, sid in enumerate(phase_a)
        }

        def run(depth):
            pool = ShardedDetectorPool(
                magnitude_config(), ShardingConfig(workers=2, pipeline_depth=depth)
            )
            try:
                for offset in range(0, 192, self.CHUNK):
                    pool.ingest_many(
                        {sid: v[offset : offset + self.CHUNK] for sid, v in phase_a.items()}
                    )
                pool.flush()
                pool.checkpoint()
                victim = pool._shards[0]
                victim.process.terminate()
                victim.process.join()
                events = []
                for offset in range(0, 96, self.CHUNK):
                    events.extend(pool.ingest_many(
                        {sid: v[offset : offset + self.CHUNK] for sid, v in phase_b.items()}
                    ))
                events.extend(pool.flush())
                return events, pool.current_periods()
            finally:
                pool.close()

        sync_events, sync_periods = run(0)
        pipe_events, pipe_periods = run(4)
        assert per_stream_sequences(pipe_events) == per_stream_sequences(sync_events)
        assert pipe_periods == sync_periods

    def test_mid_operation_crash_discards_pipelined_tail_and_recovers(self, monkeypatch):
        pool = ShardedDetectorPool(
            magnitude_config(), ShardingConfig(workers=2, pipeline_depth=4)
        )
        try:
            traces = magnitude_traces(8)
            pool.ingest_many(traces)
            pool.flush()
            pool.checkpoint()
            victim = pool._shards[0]
            victim.process.terminate()
            victim.process.join()

            original = ShardedDetectorPool._ensure_alive
            calls = {"n": 0}

            def skip_first(self):
                calls["n"] += 1
                if calls["n"] == 1:
                    return  # force the in-flight crash path
                return original(self)

            monkeypatch.setattr(ShardedDetectorPool, "_ensure_alive", skip_first)
            with pytest.raises(RuntimeError, match="died mid-operation"):
                pool.ingest_many(traces)
            assert all(shard.alive() for shard in pool._shards)
            assert not any(shard.pending for shard in pool._shards)
            assert not any(shard.events for shard in pool._shards)
            # The respawned fleet keeps working, pipelined.
            pool.ingest_many(traces)
            assert pool.flush() is not None
        finally:
            pool.close()

    def test_rebalance_preserves_pipelined_events(self):
        # Replies drained *into* the old shard handles by rebalance's
        # checkpoint must survive the handle teardown: the next flush
        # returns them, keeping the event-for-event guarantee.
        traces = magnitude_traces(10)
        pool = ShardedDetectorPool(
            magnitude_config(), ShardingConfig(workers=2, pipeline_depth=8)
        )
        try:
            events = []
            for offset in range(0, 192, self.CHUNK):
                events.extend(pool.ingest_many(
                    {sid: v[offset : offset + self.CHUNK] for sid, v in traces.items()}
                ))
            pool.rebalance(3)
            events.extend(pool.flush())
            _, ref_events = single_pool_reference(
                magnitude_config(), traces, chunk=self.CHUNK
            )
            assert per_stream_sequences(events) == per_stream_sequences(ref_events)
        finally:
            pool.close()
