"""Tests for the multi-stream detection service (DetectorPool)."""

import numpy as np
import pytest

from repro.core.detector import DetectorConfig, DynamicPeriodicityDetector
from repro.core.events import EventDetectorConfig, EventPeriodicityDetector
from repro.service.events import PeriodStartEvent
from repro.service.pool import DetectorPool, PoolConfig
from repro.traces.synthetic import noisy_periodic_signal, periodic_signal, repeat_pattern
from repro.util.validation import ValidationError


def event_trace(period: int, length: int, base: int) -> np.ndarray:
    return repeat_pattern(base + np.arange(period), length)


class TestPoolConfig:
    def test_rejects_unknown_mode(self):
        with pytest.raises(ValidationError):
            PoolConfig(mode="spectral")

    def test_rejects_mismatched_override_configs(self):
        with pytest.raises(ValidationError):
            PoolConfig(mode="event", detector_config=DetectorConfig())
        with pytest.raises(ValidationError):
            PoolConfig(mode="magnitude", event_config=EventDetectorConfig())

    def test_kwargs_shorthand(self):
        pool = DetectorPool(mode="event", window_size=32)
        assert pool.config.window_size == 32
        with pytest.raises(ValidationError):
            DetectorPool(PoolConfig(), mode="event")


class TestIngestion:
    def test_streams_created_on_first_use(self):
        pool = DetectorPool(PoolConfig(mode="event", window_size=32))
        assert "a" not in pool
        pool.ingest("a", [1, 2, 3] * 6)
        assert "a" in pool and len(pool) == 1
        assert pool.current_period("a") == 3

    def test_events_match_standalone_detector(self):
        pool = DetectorPool(PoolConfig(mode="event", window_size=64))
        trace = event_trace(5, 200, base=100)
        events = []
        for offset in range(0, 200, 17):  # ragged batches
            events.extend(pool.ingest("app", trace[offset : offset + 17]))

        reference = EventPeriodicityDetector(EventDetectorConfig(window_size=64))
        expected = [
            (r.index, r.period)
            for r in reference.process(trace)
            if r.is_period_start and r.period
        ]
        assert [(e.index, e.period) for e in events] == expected
        assert all(isinstance(e, PeriodStartEvent) for e in events)
        assert all(e.stream_id == "app" for e in events)

    def test_interleaved_streams_are_independent(self):
        pool = DetectorPool(PoolConfig(mode="event", window_size=64))
        traces = {f"s{i}": event_trace(3 + i, 120, base=1000 * i) for i in range(5)}
        for offset in range(0, 120, 10):
            for sid, trace in traces.items():
                pool.ingest(sid, trace[offset : offset + 10])
        for i in range(5):
            assert pool.current_period(f"s{i}") == 3 + i

    def test_magnitude_mode(self):
        pool = DetectorPool(PoolConfig(mode="magnitude", window_size=64))
        pool.ingest("m", noisy_periodic_signal(6, 256, noise_std=0.02, seed=0))
        assert pool.current_period("m") == 6


class TestLockstep:
    def test_soa_path_equals_engine_path(self):
        cfg = DetectorConfig(window_size=48, evaluation_interval=2, refresh_interval=31)
        traces = {
            f"s{i}": noisy_periodic_signal(3 + i % 7, 300, noise_std=0.03, seed=i)
            for i in range(12)
        }
        fast = DetectorPool(PoolConfig(mode="magnitude", detector_config=cfg))
        fast_events = fast.ingest_lockstep(traces)

        slow = DetectorPool(PoolConfig(mode="magnitude", detector_config=cfg))
        slow_events = []
        for sid, trace in traces.items():
            slow_events.extend(slow.ingest(sid, trace))

        assert sorted(
            [(e.stream_id, e.index, e.period) for e in fast_events]
        ) == sorted([(e.stream_id, e.index, e.period) for e in slow_events])
        for sid in traces:
            assert fast.current_period(sid) == slow.current_period(sid)

    def test_streams_continue_after_lockstep_handoff(self):
        cfg = DetectorConfig(window_size=48)
        # soa_min_streams=1 forces the bank even for this tiny fleet, so
        # the hand-off path stays exercised.
        pool = DetectorPool(
            PoolConfig(mode="magnitude", detector_config=cfg, soa_min_streams=1)
        )
        first = periodic_signal(5, 200, seed=1)
        second = periodic_signal(5, 100, seed=1)
        pool.ingest_lockstep({"a": first, "b": first})
        assert pool.stats().lockstep_backend == "soa"
        events = pool.ingest("a", second)  # per-stream ingest after the hand-off

        reference = DynamicPeriodicityDetector(cfg)
        reference.process(np.concatenate([first, second]))
        assert pool.current_period("a") == reference.current_period
        assert pool.stream_stats("a").samples == 300

    def test_small_fleet_stays_per_stream(self):
        # Below the measured crossover the SoA bank loses to per-stream
        # engines, so a two-stream lockstep call must not use it — and the
        # chosen backend must be visible in the stats.
        pool = DetectorPool(PoolConfig(mode="event", window_size=32))
        traces = {"a": event_trace(3, 60, 0), "b": event_trace(4, 60, 50)}
        pool.ingest_lockstep(traces)
        assert pool.stats().lockstep_backend == "per-stream"
        assert pool.current_period("a") == 3
        assert pool.current_period("b") == 4

    def test_event_lockstep_uses_event_bank_above_crossover(self):
        traces = {f"s{i}": event_trace(3 + i % 5, 120, 100 * i) for i in range(8)}
        fast = DetectorPool(PoolConfig(mode="event", window_size=48))
        fast_events = fast.ingest_lockstep(traces)
        assert fast.stats().lockstep_backend == "soa"

        slow = DetectorPool(PoolConfig(mode="event", window_size=48))
        slow_events = []
        for sid, trace in traces.items():
            slow_events.extend(slow.ingest(sid, trace))
        assert sorted(
            (e.stream_id, e.index, e.period, e.new_detection) for e in fast_events
        ) == sorted(
            (e.stream_id, e.index, e.period, e.new_detection) for e in slow_events
        )
        for sid in traces:
            assert fast.current_period(sid) == slow.current_period(sid)

    def test_backend_choice_is_logged_once(self, caplog):
        import logging

        traces = {f"s{i}": event_trace(3, 60, 10 * i) for i in range(6)}
        pool = DetectorPool(PoolConfig(mode="event", window_size=32))
        with caplog.at_level(logging.INFO, logger="repro.service.pool"):
            pool.ingest_lockstep({k: v for k, v in list(traces.items())[:6]})
            pool.ingest_lockstep({f"t{i}": event_trace(4, 60, 7 * i) for i in range(6)})
        messages = [r.message for r in caplog.records if "lockstep backend" in r.message]
        assert len(messages) == 1 and "soa" in messages[0]

    def test_unequal_lengths_rejected(self):
        pool = DetectorPool(PoolConfig(mode="magnitude"))
        with pytest.raises(ValidationError):
            pool.ingest_lockstep({"a": [1.0, 2.0], "b": [1.0]})

    def test_thousand_concurrent_streams_lock_their_periods(self):
        """Acceptance: 1000 lockstep streams == 1000 standalone detectors."""
        cfg = DetectorConfig(window_size=64, evaluation_interval=8)
        streams = 1000
        periods = [3 + (i % 14) for i in range(streams)]
        traces = {
            f"s{i:04d}": periodic_signal(periods[i], 192, seed=i)
            for i in range(streams)
        }
        pool = DetectorPool(PoolConfig(mode="magnitude", detector_config=cfg))
        pool.ingest_lockstep(traces)
        stats = pool.stats()
        assert stats.streams == streams
        assert stats.total_samples == streams * 192
        mismatches = [
            (sid, pool.current_period(sid), periods[i])
            for i, sid in enumerate(traces)
            if pool.current_period(sid) != periods[i]
        ]
        assert not mismatches, mismatches[:5]
        # Spot-check exact equality with standalone detectors.
        for i in (0, 499, 999):
            sid = f"s{i:04d}"
            reference = DynamicPeriodicityDetector(cfg)
            reference.process(traces[sid])
            assert pool.current_period(sid) == reference.current_period
            np.testing.assert_allclose(
                pool.engine(sid).snapshot()["sums"], reference.snapshot()["sums"],
                atol=1e-9,
            )


class TestEvictionAndStats:
    def test_lru_eviction(self):
        pool = DetectorPool(PoolConfig(mode="event", window_size=16, max_streams=2))
        pool.ingest("a", [1, 2] * 4)
        pool.ingest("b", [1, 2] * 4)
        pool.ingest("a", [1, 2])  # refresh a; b becomes least recently used
        pool.ingest("c", [1, 2] * 4)
        assert "b" not in pool and "a" in pool and "c" in pool
        assert pool.stats().evicted == 1

    def test_remove_stream(self):
        pool = DetectorPool(PoolConfig(mode="event", window_size=16))
        pool.ingest("a", [1, 2, 3])
        assert pool.remove_stream("a") is True
        assert pool.remove_stream("a") is False
        assert pool.current_period("a") is None

    def test_stats_counters(self):
        pool = DetectorPool(PoolConfig(mode="event", window_size=32))
        events = pool.ingest("a", event_trace(3, 90, 0))
        stats = pool.stats()
        assert stats.total_samples == 90
        assert stats.total_events == len(events) > 0
        assert stats.locked_streams == 1
        per_stream = pool.stream_stats("a")
        assert per_stream.samples == 90
        assert per_stream.events == len(events)
        assert per_stream.current_period == 3
        assert 3 in per_stream.detected_periods


class TestRegressions:
    def test_event_lockstep_preserves_large_identifiers(self):
        # Event identifiers above 2**53 must not be corrupted by a float64
        # round-trip on the lockstep fallback path.
        trace = [7, 2**53, 7, 2**53 + 1] * 16  # true period 4
        direct = DetectorPool(PoolConfig(mode="event", window_size=32))
        direct.ingest("s", trace)
        lockstep = DetectorPool(PoolConfig(mode="event", window_size=32))
        lockstep.ingest_lockstep({"s": trace})
        assert direct.current_period("s") == 4
        assert lockstep.current_period("s") == 4

    def test_event_bank_rejected_for_lossy_identifiers(self):
        # Values that do not round-trip through int64 exactly (here:
        # non-integral floats, which the per-stream engines truncate) must
        # push even a large fleet onto the dtype-preserving fallback.
        traces = {f"s{i}": [1.5, 2.5, 3.5] * 20 for i in range(8)}
        pool = DetectorPool(PoolConfig(mode="event", window_size=32))
        pool.ingest_lockstep(traces)
        assert pool.stats().lockstep_backend == "per-stream"
        for sid in traces:
            assert pool.current_period(sid) == 3

    def test_ingest_one_matches_ingest(self):
        trace = event_trace(5, 120, base=3)
        a = DetectorPool(PoolConfig(mode="event", window_size=64))
        b = DetectorPool(PoolConfig(mode="event", window_size=64))
        batched = a.ingest("s", trace)
        singles = [e for v in trace if (e := b.ingest_one("s", int(v))) is not None]
        assert [(e.index, e.period) for e in singles] == [
            (e.index, e.period) for e in batched
        ]
        assert a.stats() == b.stats()

    def test_pool_backed_interface_survives_eviction(self):
        from repro.core.api import DPDInterface

        pool = DetectorPool(PoolConfig(mode="event", window_size=256, max_streams=2))
        iface = DPDInterface(64, mode="event", pool=pool, stream_id="mine")
        iface.dpd(1)
        pool.ingest("other-1", [1, 2] * 8)
        pool.ingest("other-2", [1, 2] * 8)  # evicts "mine"
        assert "mine" not in pool
        # Continue the phase started by the pre-eviction dpd(1) call so the
        # whole window stays exactly periodic with period 3.
        for v in [2, 3, 1] * 12:
            iface.dpd(v)
        # The interface re-registered its own engine: same object, same
        # configuration, detection state carried across the eviction.
        assert pool.engine("mine") is iface.detector
        assert iface.detector.window_size == 64
        assert iface.current_period == 3
        assert pool.current_period("mine") == 3
