"""Per-stream monotonic event sequencing across every ingestion backend.

The pool assigns each stream's events a 0-based monotonic ``seq`` (the
stream's event ordinal).  These tests pin the tentpole contract: every
backend — per-stream engines, both SoA lockstep banks, the sharded
multi-process pool — produces one coherent numbering, the numbering is
event-for-event identical across backends, and it survives
snapshot/restore (stream migration, crash recovery, rebalance).
"""

import numpy as np
import pytest

from repro.core.detector import DetectorConfig
from repro.service.pool import DetectorPool, PoolConfig
from repro.service.sharding import ShardedDetectorPool, ShardingConfig
from repro.traces.synthetic import periodic_signal, repeat_pattern


def magnitude_config(soa_min_streams: int | None = None, **overrides) -> PoolConfig:
    options = dict(window_size=64, evaluation_interval=4)
    options.update(overrides)
    return PoolConfig(
        mode="magnitude",
        detector_config=DetectorConfig(**options),
        soa_min_streams=soa_min_streams,
    )


def event_config(**overrides) -> PoolConfig:
    options = dict(mode="event", window_size=32)
    options.update(overrides)
    return PoolConfig(**options)


def magnitude_traces(streams: int, samples: int = 192) -> dict[str, np.ndarray]:
    return {
        f"s{i:03d}": periodic_signal(3 + i % 11, samples, seed=i)
        for i in range(streams)
    }


def event_traces(streams: int, samples: int = 160) -> dict[str, np.ndarray]:
    return {
        f"app-{i}": repeat_pattern(100 * (i + 1) + np.arange(3 + i % 7), samples)
        for i in range(streams)
    }


def stream_seq_key(event):
    return (event.stream_id, event.seq)


def assert_seqs_are_per_stream_ordinals(events) -> None:
    """Every stream's events must carry seq 0, 1, 2, ... in order."""
    counters: dict[str, int] = {}
    for event in events:
        expected = counters.get(event.stream_id, 0)
        assert event.seq == expected, (
            f"{event.stream_id}: got seq {event.seq}, expected {expected}"
        )
        counters[event.stream_id] = expected + 1


class TestPoolSequencing:
    def test_batch_ingest_assigns_ordinals(self):
        pool = DetectorPool(event_config())
        events = []
        for sid, trace in event_traces(3).items():
            for offset in range(0, trace.size, 40):
                events.extend(pool.ingest(sid, trace[offset : offset + 40]))
        assert events
        assert_seqs_are_per_stream_ordinals(events)

    def test_ingest_one_continues_the_same_numbering(self):
        trace = next(iter(event_traces(1).values()))
        batched = DetectorPool(event_config())
        batch_events = batched.ingest("app", trace)
        single = DetectorPool(event_config())
        one_events = [
            e for v in trace if (e := single.ingest_one("app", int(v))) is not None
        ]
        assert [e.seq for e in one_events] == [e.seq for e in batch_events]
        assert_seqs_are_per_stream_ordinals(one_events)

    @pytest.mark.parametrize("mode", ["magnitude", "event"])
    def test_lockstep_soa_matches_per_stream_including_seq(self, mode, kernel_backend):
        if mode == "magnitude":
            config, traces = magnitude_config, magnitude_traces
        else:
            config, traces = event_config, event_traces
        data = traces(6)
        soa = DetectorPool(config(soa_min_streams=1)).ingest_lockstep(data)
        per_stream = DetectorPool(config(soa_min_streams=10**6)).ingest_lockstep(data)
        assert_seqs_are_per_stream_ordinals(soa)
        # Event-for-event identical, seq included (dataclass equality).
        by_stream_soa: dict[str, list] = {}
        by_stream_ref: dict[str, list] = {}
        for e in soa:
            by_stream_soa.setdefault(e.stream_id, []).append(e)
        for e in per_stream:
            by_stream_ref.setdefault(e.stream_id, []).append(e)
        assert by_stream_soa == by_stream_ref

    def test_restore_stream_resumes_the_numbering(self):
        trace = next(iter(event_traces(1, samples=200).values()))
        pool = DetectorPool(event_config())
        first = pool.ingest("app", trace[:120])
        snap = pool.snapshot_streams(["app"])["app"]

        resumed = DetectorPool(event_config())
        resumed.restore_stream(
            "app", snap["state"], samples=snap["samples"], events=snap["events"]
        )
        second = resumed.ingest("app", trace[120:])
        combined = first + second
        assert second  # the tail produces events, otherwise this tests nothing
        assert_seqs_are_per_stream_ordinals(combined)

    def test_unsequenced_default_is_minus_one(self):
        from repro.service.events import PeriodStartEvent

        assert PeriodStartEvent("s", 1, 3, 1.0, True).seq == -1


class TestShardedSequencing:
    def test_sharded_matches_single_pool_including_seq(self, kernel_backend):
        traces = magnitude_traces(10)
        with ShardedDetectorPool(
            magnitude_config(), ShardingConfig(workers=2)
        ) as sharded:
            sharded_events = sharded.ingest_many(traces)
        single = DetectorPool(magnitude_config())
        single_events = []
        for sid, trace in traces.items():
            single_events.extend(single.ingest(sid, trace))
        assert sorted(sharded_events, key=stream_seq_key) == sorted(
            single_events, key=stream_seq_key
        )
        assert_seqs_are_per_stream_ordinals(sorted(sharded_events, key=stream_seq_key))

    def test_seqs_stay_monotonic_across_rebalance_and_respawn(self):
        # The regression guard of the PR-5 satellite: shard-local seq
        # counters must travel with the snapshot protocol through a
        # rebalance AND a forced worker crash/respawn, so replayed
        # streams keep one strictly monotonic numbering end to end.
        traces = magnitude_traces(8, samples=480)

        def phase(pool, lo, hi):
            return pool.ingest_many(
                {sid: trace[lo:hi] for sid, trace in traces.items()}
            )

        with ShardedDetectorPool(
            magnitude_config(), ShardingConfig(workers=2)
        ) as pool:
            events = phase(pool, 0, 160)
            pool.rebalance(3)
            events += phase(pool, 160, 320)
            pool.checkpoint()
            victim = pool._shards[0]
            victim.process.terminate()
            victim.process.join()
            # The next ingest transparently respawns from the checkpoint
            # (taken after phase 2, so no events are lost or repeated).
            events += phase(pool, 320, 480)
        assert events
        assert_seqs_are_per_stream_ordinals(events)
        # And the numbering matches an unsharded pool run of the same
        # phases exactly (rebalance + respawn are pure routing).
        single = DetectorPool(magnitude_config())
        reference = []
        for lo, hi in ((0, 160), (160, 320), (320, 480)):
            for sid, trace in traces.items():
                reference.extend(single.ingest(sid, trace[lo:hi]))
        assert sorted(events, key=stream_seq_key) == sorted(
            reference, key=stream_seq_key
        )
