"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.traces.io import save_trace, save_trace_csv
from repro.traces.synthetic import make_trace


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands_parse(self):
        parser = build_parser()
        for argv in (["table2"], ["table3"], ["fig3"], ["fig4"], ["fig7"], ["speedup"], ["detect", "x.npz"]):
            args = parser.parse_args(argv)
            assert args.command == argv[0]


class TestCommands:
    def test_fig3(self, capsys):
        assert main(["fig3", "--iterations", "6"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out
        assert "peak_cpus=16" in out

    def test_fig4(self, capsys):
        assert main(["fig4", "--iterations", "12"]) == 0
        out = capsys.readouterr().out
        assert "detected period m = 44" in out

    def test_table3_reduced(self, capsys):
        assert main(["table3", "--length", "400"]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out
        assert "hydro2d" in out

    def test_speedup(self, capsys):
        assert main(["speedup", "--cpus", "4", "--iterations", "20"]) == 0
        out = capsys.readouterr().out
        assert "SelfAnalyzer report" in out
        assert "analytic speedup" in out

    def test_detect_event_trace(self, tmp_path, capsys):
        trace = make_trace(np.tile([10, 20, 30, 40], 40), "ev", kind="events")
        path = save_trace(trace, tmp_path / "ev.npz")
        assert main(["detect", str(path), "--window", "32"]) == 0
        out = capsys.readouterr().out
        assert "detected periodicities: [4]" in out

    def test_detect_magnitude_csv(self, tmp_path, capsys):
        values = np.tile([0.0, 2.0, 5.0, 1.0, 7.0], 40)
        trace = make_trace(values, "mag", sampling_interval=1e-3)
        path = save_trace_csv(trace, tmp_path / "mag.csv")
        assert main(["detect", str(path), "--window", "64"]) == 0
        out = capsys.readouterr().out
        assert "mode=magnitude" in out
        assert "[5]" in out

    def test_detect_aperiodic_event_trace_returns_2(self, tmp_path, capsys):
        # A stream of all-distinct event identifiers has no exact repetition,
        # so the event-mode DPD must report nothing (exit code 2).
        trace = make_trace(np.arange(200), "distinct", kind="events")
        path = save_trace(trace, tmp_path / "distinct.npz")
        assert main(["detect", str(path), "--window", "64"]) == 2


class TestPoolCommand:
    def test_pool_round_robin(self, capsys):
        assert main(["pool", "--streams", "6", "--samples", "256", "--window", "64"]) == 0
        out = capsys.readouterr().out
        assert "correct period locks: 6/6" in out
        assert "samples/s" in out

    def test_pool_lockstep(self, capsys):
        assert main([
            "pool", "--streams", "6", "--samples", "256", "--window", "64", "--lockstep",
        ]) == 0
        out = capsys.readouterr().out
        assert "lockstep/SoA" in out
        assert "correct period locks: 6/6" in out

    def test_pool_event_mode(self, capsys):
        assert main([
            "pool", "--streams", "5", "--samples", "200", "--mode", "event",
            "--window", "64",
        ]) == 0
        assert "correct period locks: 5/5" in capsys.readouterr().out

    def test_pool_sharded_workers(self, capsys):
        assert main([
            "pool", "--streams", "8", "--samples", "192", "--window", "64",
            "--workers", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "sharded x2 workers" in out
        assert "correct period locks: 8/8" in out

    def test_pool_sharded_lockstep_event(self, capsys):
        assert main([
            "pool", "--streams", "8", "--samples", "192", "--mode", "event",
            "--window", "64", "--workers", "2", "--lockstep",
        ]) == 0
        out = capsys.readouterr().out
        assert "sharded x2 workers" in out
        assert "correct period locks: 8/8" in out

    def test_pool_rejects_bad_workers(self, capsys):
        assert main(["pool", "--streams", "2", "--workers", "0"]) == 2
