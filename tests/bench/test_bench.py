"""Tests for the experiment-harness modules (fast, reduced-size variants)."""

import numpy as np
import pytest

from repro.bench.harness import ExperimentReport, format_table
from repro.bench.figures import ascii_plot, run_figure3, run_figure4, run_figure7
from repro.bench.table2 import detect_periods_for_model, format_table2, run_table2, table2_report
from repro.bench.table3 import format_table3, run_table3, table3_report
from repro.bench.workloads import (
    PAPER_TABLE3_APEXTIME,
    ft_like_application,
    spec_application,
    spec_applications,
)
from repro.traces.spec_apps import PAPER_TABLE2, tomcatv_model, turb3d_model


class TestHarness:
    def test_format_table(self):
        text = format_table(["a", "bb"], [[1, 2], [30, 4]], title="T")
        assert "T" in text
        assert "30" in text

    def test_experiment_report(self):
        report = ExperimentReport("demo")
        report.add("q", 1, 1, True)
        report.add("r", 1, 2, False, note="off by one")
        assert not report.all_match
        text = report.to_text()
        assert "off by one" in text
        assert "NO" in text


class TestTable2:
    def test_single_level_model_quickly(self):
        detected = detect_periods_for_model(
            tomcatv_model(), window_sizes=(16, 64), length=600
        )
        assert detected == (5,)

    def test_nested_model_turb3d(self):
        detected = detect_periods_for_model(
            turb3d_model(), window_sizes=(16, 64, 512), length=1580
        )
        assert detected == (12, 142)

    def test_run_table2_reduced_lengths(self):
        rows = run_table2(window_sizes=(16, 64), length_override=400)
        assert len(rows) == 5
        by_app = {r.application: r for r in rows}
        # With a short stream and small windows the single-level applications
        # are still fully detected.
        assert by_app["tomcatv"].detected_periods == (5,)
        assert by_app["swim"].detected_periods == (6,)
        assert by_app["apsi"].detected_periods == (6,)
        text = format_table2(rows)
        assert "tomcatv" in text

    def test_table2_report_structure(self):
        rows = run_table2(window_sizes=(16, 64), length_override=300)
        report = table2_report(rows)
        assert len(report.records) == 5


class TestTable3:
    def test_run_table3_reduced(self):
        rows = run_table3(length_override=500)
        assert len(rows) == 5
        for row in rows:
            assert row.num_elems == 500
            assert row.time_proc > 0
            assert row.time_per_elem_ms < 5.0
        text = format_table3(rows)
        assert "NumElems" in text

    def test_table3_report_uses_shape_criteria(self):
        rows = run_table3(length_override=300)
        report = table3_report(rows)
        assert len(report.records) == 10


class TestFigures:
    def test_figure3_series(self):
        fig3 = run_figure3(iterations=8)
        assert fig3.max_cpus == 16
        assert fig3.cpus.size == fig3.time.size

    def test_figure4_detects_44(self):
        fig4 = run_figure4(iterations=12)
        assert fig4.detected_period == 44
        assert np.isnan(fig4.distances[0])

    def test_figure7_panels(self):
        panels = run_figure7(events_per_panel=200, window_sizes=(16, 64))
        assert len(panels) == 5
        by_app = {p.application: p for p in panels}
        assert 5 in by_app["tomcatv"].detected_periods
        assert len(by_app["tomcatv"].segment_starts) > 10

    def test_ascii_plot(self):
        plot = ascii_plot(np.sin(np.linspace(0, 10, 50)) + 1, height=5, width=40, marks=(0, 25))
        assert "#" in plot
        assert "*" in plot
        assert ascii_plot(np.array([])) == "(empty series)"


class TestWorkloads:
    def test_spec_application_calibration(self):
        app = spec_application("tomcatv")
        sequential = app.analytic_time(1)
        assert sequential == pytest.approx(PAPER_TABLE3_APEXTIME["tomcatv"], rel=0.15)

    def test_spec_application_pattern_matches_table2_period(self):
        for name in PAPER_TABLE2:
            app = spec_application(name, iterations=2)
            assert app.calls_per_iteration == max(PAPER_TABLE2[name][1])

    def test_spec_applications_listing(self):
        apps = spec_applications(iterations=1)
        assert len(apps) == 5

    def test_ft_like_application_speedup_reasonable(self):
        app = ft_like_application(iterations=4)
        assert 1.0 < app.analytic_speedup(8) <= 8.0

    def test_unknown_application_rejected(self):
        with pytest.raises(Exception):
            spec_application("doom")
