"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists
so that the package can be installed in editable mode on environments whose
setuptools/pip cannot build PEP 517 editable wheels (e.g. offline hosts
without the ``wheel`` package):

    pip install -e . --no-build-isolation --no-use-pep517
"""

from setuptools import setup

setup()
