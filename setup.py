"""Setuptools shim.

This file exists so that the package can be installed in editable mode on
environments whose setuptools/pip cannot build PEP 517 editable wheels
(e.g. offline hosts without the ``wheel`` package):

    pip install -e . --no-build-isolation --no-use-pep517

The ``fast`` extra pulls in numba for the compiled hot-path kernels
(``pip install -e .[fast]``); without it the package runs fully
functional on the pure-NumPy kernel backend (see ``src/repro/kernels``).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    packages=find_packages(where="src"),
    package_dir={"": "src"},
    install_requires=["numpy"],
    extras_require={
        # Optional compiled kernels: REPRO_KERNELS=auto picks numba up
        # automatically when importable, NumPy otherwise.
        "fast": ["numba>=0.60"],
    },
)
