#!/usr/bin/env python3
"""Figures 3 and 4: periodicity of the FT-like CPU-usage trace.

Generates the CPU-usage trace of the NAS-FT-like application (number of
active CPUs sampled every millisecond, up to 16 CPUs), plots it as ASCII,
computes the distance profile d(m) of equation (1) and reports the detected
periodicity — m = 44 samples in the paper.

Run with:  python examples/nas_ft_cpu_trace.py
"""

from __future__ import annotations

import numpy as np

from repro.bench.figures import ascii_plot, run_figure3, run_figure4
from repro.core import DetectorConfig, DynamicPeriodicityDetector
from repro.traces import FT_PERIOD, generate_ft_cpu_trace


def main() -> None:
    # --- Figure 3: the trace itself -----------------------------------
    fig3 = run_figure3(iterations=24, seed=7)
    print("Figure 3 — number of CPUs used during the execution (first 3 iterations)")
    print(ascii_plot(fig3.cpus[: 3 * FT_PERIOD + 10], height=10, width=110))
    print(f"samples: {fig3.cpus.size}, sampling interval: {fig3.sampling_interval * 1e3:.0f} ms, "
          f"peak CPUs: {fig3.max_cpus}\n")

    # --- Figure 4: the distance profile d(m) ---------------------------
    fig4 = run_figure4(iterations=24, seed=7)
    finite = np.nan_to_num(fig4.distances, nan=np.nanmax(fig4.distances))
    print("Figure 4 — distance d(m) computed by the periodicity detector")
    print(ascii_plot(finite[1:], height=10, width=100))
    print(f"local minimum of d(m) at m = {fig4.detected_period} samples "
          f"(paper reports m = {fig4.paper_period})\n")

    # --- The same detection, but streaming ------------------------------
    trace = generate_ft_cpu_trace(iterations=24, seed=7)
    detector = DynamicPeriodicityDetector(
        DetectorConfig(window_size=256, max_lag=128, min_depth=0.2)
    )
    first_lock = None
    for result in (detector.update(v) for v in trace.values):
        if result.new_detection and result.period == FT_PERIOD and first_lock is None:
            first_lock = result.index
    print("streaming detection:")
    print(f"  locked period          : {detector.current_period} samples")
    print(f"  first locked at sample : {first_lock} "
          f"(= {first_lock * 1e-3 if first_lock else 0:.3f} s of execution)")
    print(f"  periods seen over run  : {detector.detected_periods}")


if __name__ == "__main__":
    main()
