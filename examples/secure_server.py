#!/usr/bin/env python3
"""Secure multi-tenant detection service: TLS + token auth + quotas.

The example walks the security layers end to end, all through the one
``repros://`` endpoint URL a deployment would put in its config:

1. generate a throwaway self-signed certificate (the CLI equivalent is
   ``repro serve --tls-cert server.pem --tls-key server.key
   --auth-token ...``);
2. host a daemon that terminates TLS, requires a token at HELLO and
   caps the ``tenant-a`` namespace at two streams;
3. connect with ``repro.server.connect`` and one endpoint URL carrying
   the token and the pinned CA — then watch a wrong token get rejected
   before any server state exists, and the stream quota answer a clean
   per-request error while the connection lives on;
4. read the per-tenant usage counters back out of STATS.

Run with:  PYTHONPATH=src python examples/secure_server.py
"""

from __future__ import annotations

import subprocess
import tempfile
from pathlib import Path

import numpy as np

from repro.server import connect
from repro.server.client import ServerError
from repro.server.server import ServerConfig, ServerThread
from repro.service.pool import DetectorPool, PoolConfig
from repro.traces.synthetic import repeat_pattern


def make_certificate(directory: Path) -> tuple[str, str]:
    """A self-signed localhost certificate, as a deployment tool would."""
    cert = directory / "server.pem"
    key = directory / "server.key"
    subprocess.run(
        ["openssl", "req", "-x509", "-newkey", "rsa:2048", "-nodes",
         "-days", "2", "-subj", "/CN=localhost",
         "-addext", "subjectAltName=DNS:localhost,IP:127.0.0.1",
         "-keyout", str(key), "-out", str(cert)],
        check=True, capture_output=True,
    )
    return str(cert), str(key)


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="repro-secure-") as tmp:
        cert, key = make_certificate(Path(tmp))

        # 1+2. TLS listener, one accepted token pinned to tenant-a, and
        # a two-stream cap on that namespace.
        server_config = ServerConfig(
            tls_cert=cert,
            tls_key=key,
            auth_tokens={"s3cret-token": "tenant-a"},
            quotas={"tenant-a": {"max_streams": 2}},
        )
        pool = DetectorPool(PoolConfig(mode="event", window_size=64))
        with ServerThread(pool, server_config) as (host, port):
            url = f"repros://s3cret-token@{host}:{port}?ca={cert}"
            print(f"daemon listening on {host}:{port} (TLS + token auth)")

            # 3a. A wrong token is rejected at HELLO — constant-time
            # compare, ERROR before any pool mutation, socket closed.
            try:
                connect(f"repros://wrong-token@{host}:{port}?ca={cert}")
            except ServerError as exc:
                print(f"wrong token refused: {exc}")

            # 3b. The real token connects; its namespace is forced to
            # tenant-a no matter what the client asks for.
            with connect(url, namespace="whatever") as client:
                print(f"authenticated; serving namespace {client.namespace!r}")

                traces = {
                    f"app-{period}": repeat_pattern(
                        100 * period + np.arange(period), 210
                    )
                    for period in (3, 5)
                }
                events = client.ingest_many(traces)
                print(f"two streams admitted, {len(events)} period-start events")

                # 3c. The third stream breaks the quota: that one request
                # errors, the connection and admitted streams live on.
                try:
                    client.ingest("app-7", repeat_pattern(np.arange(7), 70))
                except ServerError as exc:
                    print(f"third stream refused: {exc}")
                print(f"locked periods: {client.stats(periods=True)['periods']}")

                # 4. Per-tenant usage, straight from STATS.
                stats = client.stats()["server"]
                print(f"auth counters: {stats['auth']}")
                print(f"tenant-a quota counters: {stats['quotas']['tenant-a']}")
    print("daemon drained and stopped")


if __name__ == "__main__":
    main()
