#!/usr/bin/env python3
"""Network detection service, end to end on loopback TCP.

The example walks the whole network layer of the reproduction:

1. host a detection daemon in-process (the same ``DetectionServer``
   that ``python -m repro serve`` runs);
2. push periodic streams through the blocking ``DetectionClient`` and
   collect the ``PeriodStartEvent`` replies;
3. watch the same events arrive as asynchronous SUBSCRIBE pushes on a
   second connection;
4. snapshot the detector state, reconnect, restore and *resume* —
   the hand-off every production restart needs.

Run with:  PYTHONPATH=src python examples/server_roundtrip.py
"""

from __future__ import annotations

import numpy as np

from repro.server.client import DetectionClient
from repro.server.server import ServerThread
from repro.service.pool import DetectorPool, PoolConfig
from repro.traces.synthetic import repeat_pattern


def main() -> None:
    # 1. A daemon serving an event-mode pool, on an ephemeral port.
    config = PoolConfig(mode="event", window_size=64)
    with ServerThread(DetectorPool(config)) as (host, port):
        print(f"daemon listening on {host}:{port}")

        # 2. A producer connection pushing three identifier streams with
        #    known periods 3, 5 and 7 — chunked, as a real sampler would.
        url = f"repro://{host}:{port}"
        producer = DetectionClient(url, namespace="producer")
        watcher = DetectionClient(url, namespace="watch")
        watcher.subscribe("all")

        traces = {
            f"app-{period}": repeat_pattern(100 * period + np.arange(period), 210)
            for period in (3, 5, 7)
        }
        events = []
        for offset in range(0, 210, 70):
            events.extend(producer.ingest_many(
                {sid: trace[offset : offset + 70] for sid, trace in traces.items()}
            ))
        print(f"producer received {len(events)} period-start events, e.g. {events[0]}")

        # 3. The subscriber sees the same events, namespaced, as pushes.
        pushed = []
        while (batch := watcher.next_events(timeout=2)) is not None:
            pushed.extend(batch)
        print(f"watcher received {len(pushed)} events via SUBSCRIBE "
              f"(streams: {sorted({e.stream_id for e in pushed})})")

        periods = producer.stats(periods=True)["periods"]
        print(f"locked periods on the server: {periods}")

        # 4. Snapshot, drop the connection, reconnect fresh, restore, resume.
        states = producer.snapshot()
        producer.close()
        resumed = DetectionClient(url, namespace="producer", fresh=True)
        resumed.restore(states)
        more = resumed.ingest_many(
            {sid: trace[:70] for sid, trace in traces.items()}
        )
        print(f"after reconnect + restore: {len(more)} further events, "
              f"first index {more[0].index} (counting continued, not reset)")
        resumed.close()
        watcher.close()
    print("daemon drained and stopped")


if __name__ == "__main__":
    main()
