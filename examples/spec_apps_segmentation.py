#!/usr/bin/env python3
"""Table 2 and Figure 7: detection and segmentation of the five applications.

Runs the multi-scale DPD over the loop-call address streams of the five
SPECfp95-like application models, reports the detected periodicities
(Table 2) and shows the segmentation marks of the stream prefix (Figure 7).

Run with:  python examples/spec_apps_segmentation.py
"""

from __future__ import annotations

import numpy as np

from repro.bench.figures import ascii_plot, run_figure7
from repro.bench.table2 import format_table2, run_table2


def main() -> None:
    print("Reproducing Table 2 (this processes the full streams; ~5 s)...\n")
    rows = run_table2()
    print(format_table2(rows))
    print()

    print("Figure 7 — address streams with the segmentation made by the DPD")
    panels = run_figure7(events_per_panel=300)
    for panel in panels:
        outer = max(panel.paper_periods)
        starts = np.asarray(panel.segment_starts)
        in_view = tuple(int(s) for s in starts if s < panel.values.size)
        print(f"\n{panel.application}: detected periodicities {panel.detected_periods} "
              f"(outer iteration = {outer} loop calls)")
        print(ascii_plot(panel.values.astype(float), height=8, width=100, marks=in_view))
        spacings = sorted(set(np.diff(starts).tolist()))
        print(f"  segmentation marks: {len(starts)}, spacings observed: {spacings[:6]}")


if __name__ == "__main__":
    main()
