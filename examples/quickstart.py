#!/usr/bin/env python3
"""Quickstart: the DPD interface of Table 1 on a simple event stream.

The example feeds the loop-call address stream of a tomcatv-like
application into the C-like ``DPD(sample)`` interface, exactly as the
SelfAnalyzer does through dynamic interposition, and prints the detected
periodicity, the segmentation and a value prediction.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import DPDInterface, PeriodicPredictor
from repro.traces import generate_spec_stream


def main() -> None:
    # 1. Obtain a data stream.  Here: the sequence of parallel-loop function
    #    addresses of the tomcatv model (5 loops per iteration, Table 2).
    trace = generate_spec_stream("tomcatv", 200)
    print(f"stream: {len(trace)} loop-call events from {trace.name!r}")
    print("first events:", [hex(int(v)) for v in trace.values[:12]])

    # 2. Create the detector and push the stream through the Table 1
    #    interface: DPD(sample) returns the period length at period starts
    #    and 0 otherwise.
    dpd = DPDInterface(window_size=100, mode="event")
    period_starts = []
    for index, value in enumerate(trace.values):
        period = dpd.dpd(int(value))
        if period:
            period_starts.append((index, period))

    print(f"\ndetected periodicities  : {dpd.detected_periods}")
    print(f"current locked period   : {dpd.current_period}")
    print(f"number of period starts : {len(period_starts)}")
    print("first period starts     :", period_starts[:5])

    # 3. Use the detected period to predict future values (application 3 of
    #    the paper's introduction).
    period = dpd.current_period or 1
    predictor = PeriodicPredictor(period, history=list(trace.values[:period]))
    hits = 0
    for value in trace.values[period:]:
        predicted = predictor.predict(1)
        predictor.observe(float(value))
        hits += int(predicted == value)
    total = len(trace) - period
    print(f"\none-step prediction accuracy using the detected period: {hits}/{total}")

    # 4. The window size can be adjusted at run time (DPDWindowSize).
    dpd.dpd_window_size(2 * period)
    print(f"window shrunk to {dpd.detector.window_size} samples after detection")


if __name__ == "__main__":
    main()
