#!/usr/bin/env python3
"""Performance-driven processor allocation (the paper's motivation).

The speedup computed at run time by the DPD + SelfAnalyzer pair exists to
feed the processor-allocation scheduler [Corbalan2000].  This example first
*measures* the parallel fraction of three applications with the
SelfAnalyzer, then schedules a multi-programmed workload built from those
measurements under equipartition and under the performance-driven policy.

Run with:  python examples/scheduling_allocation.py
"""

from __future__ import annotations

from repro.bench.harness import format_table
from repro.bench.workloads import ft_like_application
from repro.runtime import ApplicationRunner, DIToolsInterposer, Machine
from repro.scheduling import (
    ApplicationProfile,
    EquipartitionPolicy,
    PerformanceDrivenPolicy,
    WorkloadSimulator,
)
from repro.selfanalyzer import SelfAnalyzer, SelfAnalyzerConfig


def measure_parallel_fraction(name: str, loops: int, work: float, cpus: int = 8) -> float:
    """Run a small instance under the SelfAnalyzer and invert Amdahl's law."""
    app = ft_like_application(iterations=20, loops_per_iteration=loops, work_per_iteration=work)
    interposer = DIToolsInterposer()
    runner = ApplicationRunner(app, machine=Machine(16), interposer=interposer, cpus=cpus)
    analyzer = SelfAnalyzer(SelfAnalyzerConfig(dpd_window_size=64, total_iterations_hint=20))
    analyzer.attach(interposer, runner)
    runner.run()
    measurement = analyzer.main_region().measurement
    fraction = measurement.estimated_parallel_fraction if measurement else 0.5
    print(f"  {name:12s}: measured speedup {measurement.speedup:5.2f} on {cpus} CPUs "
          f"-> parallel fraction {fraction:.3f}")
    return fraction


def main() -> None:
    print("Step 1 — measure each application's scalability at run time:")
    fractions = {
        "fft_like": measure_parallel_fraction("fft_like", loops=8, work=0.05),
        "stencil_like": measure_parallel_fraction("stencil_like", loops=6, work=0.03),
        "sparse_like": measure_parallel_fraction("sparse_like", loops=4, work=0.02),
    }

    profiles = [
        ApplicationProfile("fft_like", requested_cpus=32, parallel_fraction=fractions["fft_like"], remaining_work=240.0),
        ApplicationProfile("stencil_like", requested_cpus=32, parallel_fraction=fractions["stencil_like"], remaining_work=160.0),
        ApplicationProfile("sparse_like", requested_cpus=32, parallel_fraction=fractions["sparse_like"], remaining_work=80.0),
        ApplicationProfile("legacy_serial", requested_cpus=32, parallel_fraction=0.2, remaining_work=40.0),
    ]

    print("\nStep 2 — schedule a 4-application workload on a 32-CPU machine:")
    results = {}
    for label, policy in (
        ("equipartition", EquipartitionPolicy()),
        ("performance-driven", PerformanceDrivenPolicy(efficiency_target=0.5)),
    ):
        sim = WorkloadSimulator(Machine(32), policy, quantum=0.5)
        results[label] = sim.run([ApplicationProfile(p.name, p.requested_cpus, p.parallel_fraction, p.remaining_work) for p in profiles])

    rows = []
    for name in sorted(results["equipartition"].finish_times):
        rows.append([
            name,
            f"{results['equipartition'].finish_times[name]:.1f}",
            f"{results['performance-driven'].finish_times[name]:.1f}",
        ])
    rows.append([
        "(mean turnaround)",
        f"{results['equipartition'].mean_turnaround:.1f}",
        f"{results['performance-driven'].mean_turnaround:.1f}",
    ])
    print()
    print(format_table(
        ["application", "equipartition finish (s)", "performance-driven finish (s)"],
        rows,
        title="Finish times under the two allocation policies",
    ))
    print("\nThe scalable applications finish earlier when the run-time speedup "
          "measurements drive the allocation; the mostly serial one keeps the "
          "processors it can actually use.")


if __name__ == "__main__":
    main()
