#!/usr/bin/env python3
"""Section 5 case study: dynamic speedup computation with the SelfAnalyzer.

Builds an FT-like iterative application, runs it on a simulated 32-CPU
machine with DITools interposition, and lets the SelfAnalyzer — driven by
the DPD's segmentation — measure one iteration at the available processor
count and one at the baseline, compute the speedup and estimate the total
execution time.  The measured speedups are compared against the analytic
speedup of the simulated application.

Run with:  python examples/selfanalyzer_speedup.py
"""

from __future__ import annotations

from repro.bench.harness import format_table
from repro.bench.workloads import ft_like_application
from repro.runtime import ApplicationRunner, DIToolsInterposer, Machine
from repro.selfanalyzer import SelfAnalyzer, SelfAnalyzerConfig, format_analyzer_report


def run_one(cpus: int, iterations: int = 30):
    app = ft_like_application(iterations=iterations)
    machine = Machine(32)
    interposer = DIToolsInterposer()
    runner = ApplicationRunner(app, machine=machine, interposer=interposer, cpus=cpus)
    analyzer = SelfAnalyzer(
        SelfAnalyzerConfig(baseline_cpus=1, dpd_window_size=64, total_iterations_hint=iterations)
    )
    analyzer.attach(interposer, runner)
    result = runner.run()
    return app, analyzer, result, interposer


def main() -> None:
    rows = []
    for cpus in (2, 4, 8, 16, 32):
        app, analyzer, result, interposer = run_one(cpus)
        measured = analyzer.speedup_of_main_region()
        estimate = analyzer.estimated_total_time()
        rows.append(
            [
                cpus,
                f"{app.analytic_speedup(cpus):.2f}",
                f"{measured:.2f}" if measured else "-",
                f"{result.total_time:.3f}",
                f"{estimate:.3f}" if estimate else "-",
                f"{interposer.mean_cost_per_call() * 1e6:.1f}",
            ]
        )
    print(format_table(
        ["CPUs", "analytic speedup", "measured speedup", "actual time (s)",
         "estimated time (s)", "DPD cost/call (us)"],
        rows,
        title="Dynamic speedup computation (FT-like application, baseline = 1 CPU)",
    ))

    print("\nDetailed report for the 16-CPU run:\n")
    _, analyzer, _, _ = run_one(16)
    print(format_analyzer_report(analyzer))


if __name__ == "__main__":
    main()
