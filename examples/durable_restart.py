#!/usr/bin/env python3
"""Durable server state: checkpoint, "crash", warm-restart, resume.

The example walks the persistence subsystem end to end, in-process:

1. host a detection daemon with a ``state_dir`` — the same durable mode
   that ``python -m repro serve --state-dir DIR`` runs — and push
   periodic identifier streams through it;
2. force a checkpoint pass and inspect the on-disk store (manifest +
   CRC-footed segment files) and the STATS counters it surfaces;
3. stop the daemon and start a *fresh* one on the same directory: the
   warm restart rebuilds every stream's detector state, seq position
   and replay journal before the socket even opens;
4. resume a subscriber via REPLAY and continue ingesting — sequence
   numbers carry on exactly where the first daemon left off, with no
   gap callback, which is the zero-stream-loss contract.

Run with:  PYTHONPATH=src python examples/durable_restart.py
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

import numpy as np

from repro.server.client import DetectionClient
from repro.server.server import ServerConfig, ServerThread
from repro.service.pool import DetectorPool, PoolConfig
from repro.traces.synthetic import repeat_pattern


def main() -> None:
    pool_config = PoolConfig(mode="event", window_size=64)
    with tempfile.TemporaryDirectory(prefix="repro-durable-") as state_dir:
        server_config = ServerConfig(state_dir=state_dir, checkpoint_interval=30.0)

        # 1. A durable daemon; every stream ingested below will survive it.
        first = ServerThread(DetectorPool(pool_config), server_config)
        host, port = first.start()
        print(f"durable daemon on {host}:{port}, state in {state_dir}")

        traces = {
            f"app-{period}": repeat_pattern(100 * period + np.arange(period), 210)
            for period in (3, 5, 7)
        }
        live = []
        with DetectionClient(host, port, namespace="prod") as producer:
            for sid, trace in traces.items():
                live.extend(producer.ingest(sid, trace))
            print(f"ingested {sum(t.size for t in traces.values())} samples "
                  f"-> {len(live)} period-start events")

            # 2. One explicit checkpoint pass (production relies on the
            #    interval; tests and examples force the moment).
            summary = first.checkpoint()
            print(f"checkpoint pass wrote {summary['streams']} streams, "
                  f"{summary['bytes']:,} bytes")
            ckpt = producer.stats()["server"]["checkpoint"]
            print(f"STATS checkpoint counters: passes={ckpt['passes']} "
                  f"segments={ckpt['segments']} bytes={ckpt['bytes_written']:,}")

        manifest = json.loads((Path(state_dir) / "MANIFEST.json").read_text())
        print(f"on disk: {manifest['segments']} (store format {manifest['format']})")

        # 3. "Crash" the daemon and warm-restart on the same directory.
        #    (stop() also takes a final checkpoint; the kill -9 variants
        #    live in tests/server/test_crash_recovery.py.)
        first.stop()
        second = ServerThread(DetectorPool(pool_config), server_config)
        host, port = second.start()
        print(f"warm restart on {host}:{port}: "
              f"restored {second.server.restore_stats['streams']} streams, "
              f"{second.server.restore_stats['journals']} journal(s)")

        # 4. Resume: replay hands back the exact pre-restart sequence,
        #    and new ingestion continues the numbering seamlessly.
        gaps = []
        with DetectionClient(host, port, namespace="prod",
                             on_gap=lambda *a: gaps.append(a)) as subscriber:
            subscriber.subscribe()
            recovered = subscriber.resync(sorted(traces))
            assert [e.seq for e in recovered] == [e.seq for e in live]
            more = subscriber.ingest("app-3", traces["app-3"][:30])
            last_before = max(e.seq for e in live if e.stream_id == "app-3")
            print(f"replayed {len(recovered)} events (identical seqs), "
                  f"gaps reported: {len(gaps)}; new events continue at "
                  f"seq {more[0].seq} (= {last_before} + 1)")
        second.stop()


if __name__ == "__main__":
    main()
